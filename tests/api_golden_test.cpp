// Determinism goldens for the api redesign: every configuration the old
// StrategySpec::Kind enum could express maps to a declarative spec whose
// seeded RunResults are byte-identical to a hand-rolled construction of
// the same strategy (the exact wiring the pre-redesign make_strategy
// switch performed). If a registration drifts from the old defaults —
// proxy costs, periods, weights — these tests catch it sample-by-sample.
#include <gtest/gtest.h>

#include "api/api.hpp"
#include "client/agar_strategy.hpp"
#include "client/backend_strategy.hpp"
#include "client/fixed_chunks_strategy.hpp"
#include "client/lfu_config_strategy.hpp"

namespace agar {
namespace {

client::ExperimentConfig golden_config() {
  client::ExperimentConfig c;
  c.deployment.num_objects = 25;
  c.deployment.object_size_bytes = 16_KB;
  c.deployment.seed = 31337;
  c.ops_per_run = 150;
  c.runs = 2;
  c.num_clients = 2;
  c.reconfig_period_ms = 10'000.0;
  return c;
}

constexpr std::size_t kChunks = 5;
constexpr std::size_t kCacheBytes = 1_MB;

/// The pre-redesign construction, reproduced verbatim: a ClientContext
/// filled from the config plus the per-kind parameter wiring the old
/// make_strategy switch hardcoded.
client::ClientContext legacy_ctx(const client::ExperimentConfig& config,
                                 client::Deployment& deployment,
                                 RegionId region, sim::EventLoop* loop) {
  client::ClientContext ctx;
  ctx.backend = &deployment.backend();
  ctx.network = &deployment.network();
  ctx.loop = loop;
  ctx.region = region;
  ctx.decode_ms_per_mb = config.decode_ms_per_mb;
  ctx.verify_data = config.verify_data;
  return ctx;
}

std::unique_ptr<cache::CacheEngine> engine_of(const std::string& name,
                                              std::size_t capacity) {
  return api::EngineRegistry::instance().create(
      name, api::EngineContext{capacity}, api::ParamMap{});
}

client::StrategyFactory legacy_factory(const std::string& kind) {
  return [kind](const client::ExperimentConfig& config,
                client::Deployment& deployment, RegionId region,
                sim::EventLoop* loop) -> std::unique_ptr<client::ReadStrategy> {
    const auto ctx = legacy_ctx(config, deployment, region, loop);
    if (kind == "backend") {
      return std::make_unique<client::BackendStrategy>(ctx);
    }
    if (kind == "lru") {
      client::FixedChunksParams p;
      p.engine = "lru";
      p.chunks_per_object = kChunks;
      p.cache_capacity_bytes = kCacheBytes;
      return std::make_unique<client::FixedChunksStrategy>(
          ctx, p, engine_of("lru", kCacheBytes));
    }
    if (kind == "lfu") {
      client::LfuConfigParams p;
      p.chunks_per_object = kChunks;
      p.cache_capacity_bytes = kCacheBytes;
      p.reconfig_period_ms = config.reconfig_period_ms;
      return std::make_unique<client::LfuConfigStrategy>(ctx, p);
    }
    if (kind == "lfu-eviction") {
      client::FixedChunksParams p;
      p.engine = "lfu";
      p.chunks_per_object = kChunks;
      p.cache_capacity_bytes = kCacheBytes;
      p.proxy_overhead_ms = 0.5;  // frequency-tracking proxy (paper §V-A)
      return std::make_unique<client::FixedChunksStrategy>(
          ctx, p, engine_of("lfu", kCacheBytes));
    }
    if (kind == "tinylfu") {
      client::FixedChunksParams p;
      p.engine = "tinylfu";
      p.chunks_per_object = kChunks;
      p.cache_capacity_bytes = kCacheBytes;
      p.proxy_overhead_ms = 0.5;
      return std::make_unique<client::FixedChunksStrategy>(
          ctx, p, engine_of("tinylfu", kCacheBytes));
    }
    // agar
    core::AgarNodeParams p;
    p.region = region;
    p.cache_capacity_bytes = kCacheBytes;
    p.reconfig_period_ms = config.reconfig_period_ms;
    p.cache_manager.candidate_weights = config.agar_candidate_weights;
    p.cache_manager.cache_latency_ms =
        deployment.network().model().params().cache_base_ms;
    return std::make_unique<client::AgarStrategy>(ctx, p);
  };
}

/// Spec equivalent of each legacy kind, via the string front end.
api::ExperimentSpec spec_of(const std::string& kind,
                            const client::ExperimentConfig& config) {
  api::ExperimentSpec spec;
  spec.experiment = config;
  spec.set("system", kind);
  if (kind != "backend") {
    spec.set("cache_bytes", std::to_string(kCacheBytes));
    if (kind != "agar") spec.set("chunks", std::to_string(kChunks));
  }
  return spec;
}

void expect_byte_identical(const client::RunResult& a,
                           const client::RunResult& b,
                           const std::string& kind) {
  EXPECT_EQ(a.ops, b.ops) << kind;
  EXPECT_EQ(a.full_hits, b.full_hits) << kind;
  EXPECT_EQ(a.partial_hits, b.partial_hits) << kind;
  EXPECT_EQ(a.wire_fetches, b.wire_fetches) << kind;
  EXPECT_EQ(a.coalesced_fetches, b.coalesced_fetches) << kind;
  EXPECT_EQ(a.cache_stats.hits, b.cache_stats.hits) << kind;
  EXPECT_EQ(a.cache_stats.evictions, b.cache_stats.evictions) << kind;
  EXPECT_EQ(a.cache_used_bytes, b.cache_used_bytes) << kind;
  EXPECT_EQ(a.duration_ms, b.duration_ms) << kind;
  // Control-plane counters are deterministic (only planning_ms is wall
  // clock): the installed configurations themselves must match, not just
  // the latencies they produce.
  EXPECT_EQ(a.reconfigurations, b.reconfigurations) << kind;
  EXPECT_EQ(a.config_chunks_installed, b.config_chunks_installed) << kind;
  EXPECT_EQ(a.config_chunks_evicted, b.config_chunks_evicted) << kind;
  EXPECT_EQ(a.weight_histogram, b.weight_histogram) << kind;
  const auto& sa = a.latencies.sorted_samples();
  const auto& sb = b.latencies.sorted_samples();
  ASSERT_EQ(sa.size(), sb.size()) << kind;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    // Bitwise-equal doubles, not approximately equal.
    EXPECT_EQ(sa[i], sb[i]) << kind << " sample " << i;
  }
}

class ApiGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(ApiGolden, SpecMatchesLegacyConstructionByteForByte) {
  const std::string kind = GetParam();
  const auto config = golden_config();

  const auto via_spec = api::run(spec_of(kind, config)).result;
  const auto via_legacy =
      client::run_experiment(config, legacy_factory(kind), kind);

  ASSERT_EQ(via_spec.runs.size(), via_legacy.runs.size());
  for (std::size_t r = 0; r < via_spec.runs.size(); ++r) {
    expect_byte_identical(via_spec.runs[r], via_legacy.runs[r], kind);
  }
}

TEST_P(ApiGolden, SpecRunsAreRepeatable) {
  const std::string kind = GetParam();
  const auto spec = spec_of(kind, golden_config());
  const auto a = api::run(spec).result;
  const auto b = api::run(spec).result;
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    expect_byte_identical(a.runs[r], b.runs[r], kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LegacyKinds, ApiGolden,
    ::testing::Values("backend", "lru", "lfu", "lfu-eviction", "tinylfu",
                      "agar"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Control-plane goldens: the planner/estimator registries must not move the
// default path by a single byte, and the non-default entries must run end
// to end through the same spec surface.

TEST(ApiGoldenControlPlane, ExplicitDefaultsMatchImplicitDefaultsByteForByte) {
  // `planner=knapsack-dp monitor=exact-ewma` spelled out must reproduce
  // the spec that says nothing — proving the registry decomposition left
  // the pre-refactor control plane byte-identical.
  const auto config = golden_config();
  const auto implicit = api::run(spec_of("agar", config)).result;
  auto spec = spec_of("agar", config);
  spec.set("planner", "knapsack-dp");
  spec.set("monitor", "exact-ewma");
  const auto explicit_run = api::run(spec).result;
  ASSERT_EQ(implicit.runs.size(), explicit_run.runs.size());
  for (std::size_t r = 0; r < implicit.runs.size(); ++r) {
    expect_byte_identical(implicit.runs[r], explicit_run.runs[r],
                          "explicit-defaults");
  }
  // The registry-derived label must not change for the default picks.
  EXPECT_EQ(spec.label(), "Agar");
}

TEST(ApiGoldenControlPlane, DefaultRunReportsControlPlaneTelemetry) {
  const auto result = api::run(spec_of("agar", golden_config())).result;
  for (const auto& run : result.runs) {
    EXPECT_GT(run.reconfigurations, 0u);
    EXPECT_GT(run.config_chunks_installed, 0u);
    EXPECT_GE(run.planning_ms, 0.0);
  }
}

TEST(ApiGoldenControlPlane, IncrementalCountMinRunsEndToEnd) {
  auto spec = spec_of("agar", golden_config());
  spec.set("planner", "incremental");
  spec.set("planner.threshold", "0.2");
  spec.set("monitor", "count-min");
  spec.set("monitor.width", "512");
  const auto result = api::run(spec).result;
  ASSERT_EQ(result.runs.size(), 2u);
  for (const auto& run : result.runs) {
    EXPECT_EQ(run.ops, 150u);
    EXPECT_EQ(run.failed_reads, 0u);
    EXPECT_GT(run.reconfigurations, 0u);
  }
  EXPECT_EQ(result.label, "Agar[incremental,count-min]");
}

TEST(ApiGoldenControlPlane, NonDefaultPlannerRunsAreRepeatable) {
  auto spec = spec_of("agar", golden_config());
  spec.set("planner", "incremental");
  const auto a = api::run(spec).result;
  const auto b = api::run(spec).result;
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    expect_byte_identical(a.runs[r], b.runs[r], "incremental");
  }
}

// ---------------------------------------------------------------------------
// Fetch-policy golden: `fetch=none` spelled out must not create a policy
// object at all — the coordinator keeps the raw-network wire path and the
// results match the say-nothing spec byte for byte.

TEST(ApiGoldenFetchPolicy, ExplicitNoneMatchesDefaultByteForByte) {
  const auto config = golden_config();
  const auto implicit = api::run(spec_of("agar", config)).result;
  auto spec = spec_of("agar", config);
  spec.set("fetch", "none");
  const auto explicit_run = api::run(spec).result;
  ASSERT_EQ(implicit.runs.size(), explicit_run.runs.size());
  for (std::size_t r = 0; r < implicit.runs.size(); ++r) {
    expect_byte_identical(implicit.runs[r], explicit_run.runs[r],
                          "fetch-none");
    // No policy ran: the telemetry block stays absent, not zero-filled.
    EXPECT_TRUE(explicit_run.runs[r].region_success_ewma.empty());
    EXPECT_EQ(explicit_run.runs[r].fetch_attempts, 0u);
  }
  EXPECT_EQ(spec.label(), "Agar");
}

}  // namespace
}  // namespace agar
