// Timer wheel + the event loop's wheel-backed periodic timers: ordering
// across wheel levels, and the cancellation edge cases the old
// priority-queue implementation pinned down.
#include "sim/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "sim/event_loop.hpp"

namespace agar::sim {
namespace {

TEST(TimerWheel, StartsEmpty) {
  TimerWheel wheel;
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.peek_min(), nullptr);
}

TEST(TimerWheel, PopsInKeyOrderAcrossLevels) {
  // Deltas span level 0 (<256ms), level 1 (<65s), level 2 (<4.6h) and the
  // overflow list; pops must still come out in global (when, lane, seq)
  // order.
  TimerWheel wheel;
  std::vector<SimTimeMs> whens = {3.0,       250.0,     1000.0,   70000.0,
                                  100000.0,  16777300.0, 5.5,      255.9,
                                  16777216.0, 42.0};
  std::uint64_t seq = 0;
  for (const SimTimeMs when : whens) {
    wheel.insert({when, 0, seq++, seq});
  }
  std::vector<SimTimeMs> popped;
  while (!wheel.empty()) popped.push_back(wheel.pop_min().when);
  auto expected = whens;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(popped, expected);
}

TEST(TimerWheel, TiesBreakByLaneThenSeq) {
  TimerWheel wheel;
  wheel.insert({10.0, 2, 0, 1});
  wheel.insert({10.0, 0, 5, 2});
  wheel.insert({10.0, 0, 1, 3});
  wheel.insert({10.0, 1, 0, 4});
  std::vector<std::uint64_t> order;
  while (!wheel.empty()) order.push_back(wheel.pop_min().timer);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 2, 4, 1}));
}

TEST(TimerWheel, FractionalTimesShareATickButKeepExactOrder) {
  TimerWheel wheel;
  wheel.insert({10.7, 0, 0, 1});
  wheel.insert({10.2, 0, 1, 2});
  EXPECT_EQ(wheel.pop_min().timer, 2u);
  EXPECT_EQ(wheel.pop_min().timer, 1u);
}

TEST(TimerWheel, InterleavedInsertAndPopMatchesSortedOrder) {
  // Randomized pops-vs-reference check: inserts arrive while the wheel is
  // mid-advance, exercising cascades with a moved base tick.
  std::mt19937_64 rng(42);
  TimerWheel wheel;
  std::vector<std::pair<SimTimeMs, std::uint64_t>> reference;
  std::uint64_t seq = 0;
  SimTimeMs now = 0.0;
  auto insert_one = [&] {
    const SimTimeMs when =
        now + static_cast<SimTimeMs>(rng() % 200000) / 3.0;
    wheel.insert({when, 0, seq, seq});
    reference.emplace_back(when, seq);
    ++seq;
  };
  for (int i = 0; i < 50; ++i) insert_one();
  std::vector<std::uint64_t> popped;
  while (!wheel.empty()) {
    const TimerWheel::Entry entry = wheel.pop_min();
    now = entry.when;
    popped.push_back(entry.seq);
    if (rng() % 3 == 0 && seq < 200) insert_one();
  }
  std::sort(reference.begin(), reference.end());
  std::vector<std::uint64_t> expected;
  for (const auto& [when, s] : reference) expected.push_back(s);
  EXPECT_EQ(popped, expected);
}

// Regression: a long-delta entry is bucketed upstairs relative to the base
// at insert time. Once pops advance the base, a *later* short-delta insert
// lands in level 0 — and the wheel must still answer with the upstairs
// entry, not the level-0 one. (This once made a periodic probe timer fire
// late or never while the level-0 window stayed busy, breaking shard-count
// invariance.)
TEST(TimerWheel, UpperLevelEntryOvertakenByLaterInsertStillPopsFirst) {
  TimerWheel wheel;
  wheel.insert({300.0, 0, 0, 1});  // level 1 relative to base 0
  wheel.insert({50.0, 0, 1, 2});   // level 0
  EXPECT_EQ(wheel.pop_min().timer, 2u);  // base advances to tick 50
  wheel.insert({305.0, 0, 2, 3});  // delta 255: level 0, tick past 300
  EXPECT_EQ(wheel.pop_min().timer, 1u);  // the upstairs 300 still wins
  EXPECT_EQ(wheel.pop_min().timer, 3u);
  EXPECT_TRUE(wheel.empty());
}

// Same shape with equal integral ticks: the upstairs entry's fractional
// time orders first, so the equal-tick case must cascade too.
TEST(TimerWheel, EqualTickUpperEntryWithEarlierFractionPopsFirst) {
  TimerWheel wheel;
  wheel.insert({300.2, 0, 0, 1});
  wheel.insert({50.0, 0, 1, 2});
  EXPECT_EQ(wheel.pop_min().timer, 2u);
  wheel.insert({300.7, 0, 2, 3});  // same tick 300, later fraction, level 0
  EXPECT_EQ(wheel.pop_min().timer, 1u);
  EXPECT_EQ(wheel.pop_min().timer, 3u);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, RandomizedMixedDeltasMatchReferenceOrder) {
  // Differential check against a sorted reference, with peeks between
  // operations and deltas spanning every level — the pattern that exposed
  // the overtaken-upper-entry bug (pure pop loops never did).
  std::mt19937_64 rng(12345);
  TimerWheel wheel;
  std::vector<std::tuple<SimTimeMs, std::uint32_t, std::uint64_t>> reference;
  SimTimeMs now = 0.0;
  std::uint64_t seq = 0;
  auto insert_one = [&] {
    SimTimeMs delta = 0.0;
    switch (rng() % 4) {
      case 0: delta = static_cast<SimTimeMs>(rng() % 1000) / 10.0; break;
      case 1: delta = 200.0 + static_cast<SimTimeMs>(rng() % 300); break;
      case 2: delta = 1000.0 + static_cast<SimTimeMs>(rng() % 60000); break;
      default: delta = 1e5 + static_cast<SimTimeMs>(rng() % 20000000); break;
    }
    const auto lane = static_cast<std::uint32_t>(rng() % 4);
    wheel.insert({now + delta, lane, seq, seq});
    reference.emplace_back(now + delta, lane, seq);
    ++seq;
  };
  for (int step = 0; step < 4000; ++step) {
    if (rng() % 100 < 55 || reference.empty()) {
      insert_one();
    } else {
      std::sort(reference.begin(), reference.end());
      const auto [when, lane, s] = reference.front();
      const TimerWheel::Entry* min = wheel.peek_min();
      ASSERT_NE(min, nullptr);
      EXPECT_EQ(min->when, when) << "step " << step;
      EXPECT_EQ(min->lane, lane) << "step " << step;
      EXPECT_EQ(min->seq, s) << "step " << step;
      reference.erase(reference.begin());
      now = wheel.pop_min().when;
    }
    ASSERT_EQ(wheel.size(), reference.size()) << "step " << step;
  }
}

// ---- Event-loop integration: the edge cases the issue calls out.

TEST(WheelTimers, ZeroPeriodIsRejected) {
  EventLoop loop;
  EXPECT_THROW(loop.schedule_periodic(0.0, [] { return true; }),
               std::invalid_argument);
  EXPECT_THROW(loop.schedule_periodic(-5.0, [] { return true; }),
               std::invalid_argument);
  EXPECT_EQ(loop.active_timer_count(), 0u);
  EXPECT_TRUE(loop.empty());
}

TEST(WheelTimers, CancelFromInsideCallbackDoesNotRearm) {
  EventLoop loop;
  int fired = 0;
  EventLoop::TimerId id = 0;
  id = loop.schedule_periodic(10.0, [&] {
    ++fired;
    loop.cancel(id);
    return true;  // cancellation must win over the re-arm request
  });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.active_timer_count(), 0u);
}

TEST(WheelTimers, CancelOfAlreadyQueuedFiringIsACountedNoOp) {
  EventLoop loop;
  int fired = 0;
  const auto id = loop.schedule_periodic(10.0, [&] {
    ++fired;
    return true;
  });
  loop.run_until(15.0);  // the t=20 firing is now armed in the wheel
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.cancel(id));
  const auto executed_before = loop.events_executed();
  loop.run();
  // The stale firing still pops (and counts as an executed event, like the
  // old queued-closure no-op) but must not invoke the callback or re-arm.
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.events_executed(), executed_before + 1);
  EXPECT_TRUE(loop.empty());
}

TEST(WheelTimers, ManyTimersFireInDeterministicOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    loop.schedule_periodic(10.0 + i, [&order, i] {
      order.push_back(i);
      return false;
    });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

}  // namespace
}  // namespace agar::sim
