// Timer wheel + the event loop's wheel-backed periodic timers: ordering
// across wheel levels, and the cancellation edge cases the old
// priority-queue implementation pinned down.
#include "sim/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>
#include <vector>

#include "sim/event_loop.hpp"

namespace agar::sim {
namespace {

TEST(TimerWheel, StartsEmpty) {
  TimerWheel wheel;
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.peek_min(), nullptr);
}

TEST(TimerWheel, PopsInKeyOrderAcrossLevels) {
  // Deltas span level 0 (<256ms), level 1 (<65s), level 2 (<4.6h) and the
  // overflow list; pops must still come out in global (when, lane, seq)
  // order.
  TimerWheel wheel;
  std::vector<SimTimeMs> whens = {3.0,       250.0,     1000.0,   70000.0,
                                  100000.0,  16777300.0, 5.5,      255.9,
                                  16777216.0, 42.0};
  std::uint64_t seq = 0;
  for (const SimTimeMs when : whens) {
    wheel.insert({when, 0, seq++, seq});
  }
  std::vector<SimTimeMs> popped;
  while (!wheel.empty()) popped.push_back(wheel.pop_min().when);
  auto expected = whens;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(popped, expected);
}

TEST(TimerWheel, TiesBreakByLaneThenSeq) {
  TimerWheel wheel;
  wheel.insert({10.0, 2, 0, 1});
  wheel.insert({10.0, 0, 5, 2});
  wheel.insert({10.0, 0, 1, 3});
  wheel.insert({10.0, 1, 0, 4});
  std::vector<std::uint64_t> order;
  while (!wheel.empty()) order.push_back(wheel.pop_min().timer);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 2, 4, 1}));
}

TEST(TimerWheel, FractionalTimesShareATickButKeepExactOrder) {
  TimerWheel wheel;
  wheel.insert({10.7, 0, 0, 1});
  wheel.insert({10.2, 0, 1, 2});
  EXPECT_EQ(wheel.pop_min().timer, 2u);
  EXPECT_EQ(wheel.pop_min().timer, 1u);
}

TEST(TimerWheel, InterleavedInsertAndPopMatchesSortedOrder) {
  // Randomized pops-vs-reference check: inserts arrive while the wheel is
  // mid-advance, exercising cascades with a moved base tick.
  std::mt19937_64 rng(42);
  TimerWheel wheel;
  std::vector<std::pair<SimTimeMs, std::uint64_t>> reference;
  std::uint64_t seq = 0;
  SimTimeMs now = 0.0;
  auto insert_one = [&] {
    const SimTimeMs when =
        now + static_cast<SimTimeMs>(rng() % 200000) / 3.0;
    wheel.insert({when, 0, seq, seq});
    reference.emplace_back(when, seq);
    ++seq;
  };
  for (int i = 0; i < 50; ++i) insert_one();
  std::vector<std::uint64_t> popped;
  while (!wheel.empty()) {
    const TimerWheel::Entry entry = wheel.pop_min();
    now = entry.when;
    popped.push_back(entry.seq);
    if (rng() % 3 == 0 && seq < 200) insert_one();
  }
  std::sort(reference.begin(), reference.end());
  std::vector<std::uint64_t> expected;
  for (const auto& [when, s] : reference) expected.push_back(s);
  EXPECT_EQ(popped, expected);
}

// ---- Event-loop integration: the edge cases the issue calls out.

TEST(WheelTimers, ZeroPeriodIsRejected) {
  EventLoop loop;
  EXPECT_THROW(loop.schedule_periodic(0.0, [] { return true; }),
               std::invalid_argument);
  EXPECT_THROW(loop.schedule_periodic(-5.0, [] { return true; }),
               std::invalid_argument);
  EXPECT_EQ(loop.active_timer_count(), 0u);
  EXPECT_TRUE(loop.empty());
}

TEST(WheelTimers, CancelFromInsideCallbackDoesNotRearm) {
  EventLoop loop;
  int fired = 0;
  EventLoop::TimerId id = 0;
  id = loop.schedule_periodic(10.0, [&] {
    ++fired;
    loop.cancel(id);
    return true;  // cancellation must win over the re-arm request
  });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.active_timer_count(), 0u);
}

TEST(WheelTimers, CancelOfAlreadyQueuedFiringIsACountedNoOp) {
  EventLoop loop;
  int fired = 0;
  const auto id = loop.schedule_periodic(10.0, [&] {
    ++fired;
    return true;
  });
  loop.run_until(15.0);  // the t=20 firing is now armed in the wheel
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.cancel(id));
  const auto executed_before = loop.events_executed();
  loop.run();
  // The stale firing still pops (and counts as an executed event, like the
  // old queued-closure no-op) but must not invoke the callback or re-arm.
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.events_executed(), executed_before + 1);
  EXPECT_TRUE(loop.empty());
}

TEST(WheelTimers, ManyTimersFireInDeterministicOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    loop.schedule_periodic(10.0 + i, [&order, i] {
      order.push_back(i);
      return false;
    });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

}  // namespace
}  // namespace agar::sim
