// Stripe repair: rebuild lost chunks, verify integrity, handle
// unrecoverable damage.
#include "store/repair.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace agar::store {
namespace {

class RepairTest : public ::testing::Test {
 protected:
  RepairTest()
      : backend_(6, ec::CodecParams{9, 3},
                 std::make_shared<ec::RoundRobinPlacement>(false)) {
    populate_working_set(backend_, 5, 9000);
  }

  void drop_chunk(const ObjectKey& key, ChunkIndex idx) {
    const RegionId region = backend_.placement().region_of(key, idx, 6);
    ASSERT_TRUE(backend_.bucket(region).erase(ChunkId{key, idx}));
  }

  Bytes decode(const ObjectKey& key) {
    const ObjectInfo info = backend_.object_info(key);
    std::vector<ec::Chunk> chunks;
    for (ChunkIndex i = 0; i < 9; ++i) {
      const auto v = backend_.get_chunk({key, i});
      if (v.has_value()) chunks.push_back(ec::Chunk{i, Bytes(v->begin(), v->end())});
    }
    return backend_.codec().decode(info.object_size, chunks);
  }

  BackendCluster backend_;
};

TEST_F(RepairTest, IntactObjectHasNoMissingChunks) {
  EXPECT_TRUE(missing_chunks(backend_, "object0").empty());
  EXPECT_TRUE(repair_object(backend_, "object0"));
}

TEST_F(RepairTest, DetectsMissingChunks) {
  drop_chunk("object0", 4);
  drop_chunk("object0", 10);
  const auto missing = missing_chunks(backend_, "object0");
  EXPECT_EQ(missing, (std::vector<ChunkIndex>{4, 10}));
}

TEST_F(RepairTest, RepairsSingleLostDataChunk) {
  drop_chunk("object1", 3);
  RepairReport report;
  EXPECT_TRUE(repair_object(backend_, "object1", &report));
  EXPECT_EQ(report.chunks_rebuilt, 1u);
  EXPECT_TRUE(missing_chunks(backend_, "object1").empty());
  EXPECT_EQ(decode("object1"), deterministic_payload("object1", 9000));
}

TEST_F(RepairTest, RepairsLostParityChunk) {
  drop_chunk("object2", 11);
  EXPECT_TRUE(repair_object(backend_, "object2"));
  // The rebuilt parity must be byte-identical to a fresh encode.
  const Bytes payload = deterministic_payload("object2", 9000);
  const auto encoded = backend_.codec().encode(BytesView(payload));
  const auto v = backend_.get_chunk({"object2", 11});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(Bytes(v->begin(), v->end()), encoded.chunks[11].data);
}

TEST_F(RepairTest, RepairsFullRegionLoss) {
  // Losing one region costs every object two chunks; all repairable.
  for (int i = 0; i < 5; ++i) {
    const ObjectKey key = "object" + std::to_string(i);
    drop_chunk(key, 4);   // tokyo's data chunk
    drop_chunk(key, 10);  // tokyo's second chunk
  }
  const RepairReport report = repair_all(backend_);
  EXPECT_EQ(report.objects_scanned, 5u);
  EXPECT_EQ(report.objects_damaged, 5u);
  EXPECT_EQ(report.objects_repaired, 5u);
  EXPECT_EQ(report.objects_unrecoverable, 0u);
  EXPECT_EQ(report.chunks_rebuilt, 10u);
  for (int i = 0; i < 5; ++i) {
    const ObjectKey key = "object" + std::to_string(i);
    EXPECT_TRUE(missing_chunks(backend_, key).empty());
    EXPECT_EQ(decode(key), deterministic_payload(key, 9000));
  }
}

TEST_F(RepairTest, RepairsExactlyMMissing) {
  drop_chunk("object0", 0);
  drop_chunk("object0", 5);
  drop_chunk("object0", 9);
  EXPECT_TRUE(repair_object(backend_, "object0"));
  EXPECT_EQ(decode("object0"), deterministic_payload("object0", 9000));
}

TEST_F(RepairTest, MoreThanMMissingIsUnrecoverable) {
  for (const ChunkIndex idx : {0u, 1u, 2u, 3u}) {  // 4 > m = 3
    drop_chunk("object3", idx);
  }
  RepairReport report;
  EXPECT_FALSE(repair_object(backend_, "object3", &report));
  EXPECT_EQ(report.objects_unrecoverable, 1u);
  EXPECT_EQ(report.chunks_rebuilt, 0u);
}

TEST_F(RepairTest, RepairAllSkipsHealthyObjects) {
  drop_chunk("object4", 7);
  const RepairReport report = repair_all(backend_);
  EXPECT_EQ(report.objects_scanned, 5u);
  EXPECT_EQ(report.objects_damaged, 1u);
  EXPECT_EQ(report.objects_repaired, 1u);
}

TEST_F(RepairTest, RepairIsIdempotent) {
  drop_chunk("object0", 2);
  EXPECT_TRUE(repair_object(backend_, "object0"));
  RepairReport second;
  EXPECT_TRUE(repair_object(backend_, "object0", &second));
  EXPECT_EQ(second.objects_damaged, 0u);
  EXPECT_EQ(second.chunks_rebuilt, 0u);
}

}  // namespace
}  // namespace agar::store
