// The event-driven read pipeline: asynchronous fetches, in-flight
// coalescing, per-region concurrency limits with FIFO queueing, open-loop
// Poisson clients in multiple regions, and end-to-end determinism.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "api/api.hpp"
#include "client/backend_strategy.hpp"
#include "client/fixed_chunks_strategy.hpp"
#include "client/runner.hpp"
#include "core/fetch_coordinator.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"

namespace agar::client {
namespace {

class AsyncPipelineTest : public ::testing::Test {
 protected:
  AsyncPipelineTest()
      : topology_(sim::aws_six_regions()),
        network_(sim::LatencyModel(&topology_, zero_jitter(), 3)),
        backend_(6, ec::CodecParams{9, 3},
                 std::make_shared<ec::RoundRobinPlacement>(false)) {
    store::populate_working_set(backend_, 5, 9000);
    network_.bind_loop(&loop_);
  }

  static sim::LatencyModelParams zero_jitter() {
    sim::LatencyModelParams p;
    p.jitter_fraction = 0.0;
    p.wan_bandwidth_mbps = std::numeric_limits<double>::infinity();
    p.cache_bandwidth_mbps = std::numeric_limits<double>::infinity();
    return p;
  }

  ClientContext ctx(RegionId region) {
    ClientContext c;
    c.backend = &backend_;
    c.network = &network_;
    c.loop = &loop_;
    c.region = region;
    c.decode_ms_per_mb = 0.0;
    return c;
  }

  sim::Topology topology_;
  sim::EventLoop loop_;
  sim::Network network_;
  store::BackendCluster backend_;
};

TEST_F(AsyncPipelineTest, CoordinatorCoalescesDuplicateFetches) {
  core::FetchCoordinator coordinator(&network_);
  std::vector<SimTimeMs> completions;
  const ChunkId chunk{"object0", 2};
  ASSERT_EQ(coordinator.fetch(chunk, 0, 1, 1000,
                              [&](auto l) { completions.push_back(*l); }),
            core::FetchStart::kStarted);
  ASSERT_EQ(coordinator.fetch(chunk, 0, 1, 1000,
                              [&](auto l) { completions.push_back(*l); }),
            core::FetchStart::kJoined);
  EXPECT_TRUE(coordinator.in_flight(chunk));
  loop_.run();
  // One wire fetch, both callbacks fired with the same transfer.
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_DOUBLE_EQ(completions[0], completions[1]);
  EXPECT_EQ(coordinator.started(), 1u);
  EXPECT_EQ(coordinator.coalesced(), 1u);
  EXPECT_EQ(network_.wire_fetches(), 1u);
  EXPECT_FALSE(coordinator.in_flight(chunk));
}

TEST_F(AsyncPipelineTest, OverlappingReadsShareOneWireFetchPerChunk) {
  BackendStrategy s(ctx(sim::region::kFrankfurt));
  std::vector<ReadResult> results;
  // Two reads of the same object start at t=0 — before either completes.
  s.start_read("object0", [&](const ReadResult& r) { results.push_back(r); });
  s.start_read("object0", [&](const ReadResult& r) { results.push_back(r); });
  loop_.run();
  ASSERT_EQ(results.size(), 2u);
  // 9 chunks went on the wire once; the second read joined all of them.
  EXPECT_EQ(network_.wire_fetches(), 9u);
  EXPECT_EQ(s.fetch_coordinator().started(), 9u);
  EXPECT_EQ(s.fetch_coordinator().coalesced(), 9u);
  EXPECT_EQ(results[1].coalesced_chunks, 9u);
  // Both still assemble k chunks and finish together (zero jitter).
  EXPECT_EQ(results[0].backend_chunks, 9u);
  EXPECT_EQ(results[1].backend_chunks, 9u);
  EXPECT_DOUBLE_EQ(results[0].latency_ms, results[1].latency_ms);
}

TEST_F(AsyncPipelineTest, ReadPathCoalescesWithPopulationFetches) {
  // LRU-9: the first read of an object fetches its chunks AND (at
  // completion) wants them populated; a second overlapping read of the
  // same object must ride the same wire fetches instead of re-downloading.
  FixedChunksParams p;
  p.chunks_per_object = 9;
  p.cache_capacity_bytes = 100_MB;
  FixedChunksStrategy s(ctx(sim::region::kFrankfurt), p,
                        api::EngineRegistry::instance().create(
                            "lru", api::EngineContext{p.cache_capacity_bytes},
                            api::ParamMap{}));
  std::size_t done = 0;
  s.start_read("object0", [&](const ReadResult&) { ++done; });
  loop_.run_until(1.0);  // first read's fetches now in flight
  s.start_read("object0", [&](const ReadResult& r) {
    ++done;
    EXPECT_EQ(r.coalesced_chunks, 9u);
  });
  loop_.run();
  EXPECT_EQ(done, 2u);
  EXPECT_EQ(network_.wire_fetches(), 9u);
  // And once everything landed, the cache serves the object outright.
  const ReadResult warm = s.read("object0");
  EXPECT_TRUE(warm.full_hit);
}

TEST_F(AsyncPipelineTest, ConcurrencyLimitQueuesFetchesFifo) {
  network_.set_max_outstanding_per_region(1);
  const RegionId to = sim::region::kDublin;
  const SimTimeMs wire =
      *network_.backend_fetch(sim::region::kFrankfurt, to, 1000);
  std::vector<SimTimeMs> completion_times;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(network_.begin_fetch(
        sim::region::kFrankfurt, to, 1000,
        [&](auto) { completion_times.push_back(loop_.now()); }));
  }
  loop_.run();
  // One at a time: completions at L, 2L, 3L — queueing is visible latency.
  ASSERT_EQ(completion_times.size(), 3u);
  EXPECT_DOUBLE_EQ(completion_times[0], wire);
  EXPECT_DOUBLE_EQ(completion_times[1], 2 * wire);
  EXPECT_DOUBLE_EQ(completion_times[2], 3 * wire);
  EXPECT_EQ(network_.queued_fetches(), 2u);
  EXPECT_EQ(network_.max_queue_depth(), 2u);
  EXPECT_EQ(network_.max_in_flight(), 1u);
}

TEST_F(AsyncPipelineTest, UnlimitedRegionServesBatchInParallel) {
  network_.set_max_outstanding_per_region(0);
  const RegionId to = sim::region::kDublin;
  const SimTimeMs wire =
      *network_.backend_fetch(sim::region::kFrankfurt, to, 1000);
  std::vector<SimTimeMs> completion_times;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(network_.begin_fetch(
        sim::region::kFrankfurt, to, 1000,
        [&](auto) { completion_times.push_back(loop_.now()); }));
  }
  loop_.run();
  for (const SimTimeMs t : completion_times) EXPECT_DOUBLE_EQ(t, wire);
  EXPECT_EQ(network_.queued_fetches(), 0u);
  EXPECT_EQ(network_.max_in_flight(), 4u);
}

TEST_F(AsyncPipelineTest, ContendingReadsPayQueueingDelay) {
  // Two concurrent reads of different objects under a one-slot-per-region
  // cap: the second read's chunk at the slowest region (Tokyo, 1130 ms
  // from Frankfurt) waits for the first read's, so its completion lands at
  // ~2x the uncontended critical path — queueing is real timeline delay,
  // not hidden arithmetic.
  network_.set_max_outstanding_per_region(1);
  BackendStrategy s(ctx(sim::region::kFrankfurt));
  std::vector<SimTimeMs> latencies;
  s.start_read("object0",
               [&](const ReadResult& r) { latencies.push_back(r.latency_ms); });
  s.start_read("object1",
               [&](const ReadResult& r) { latencies.push_back(r.latency_ms); });
  loop_.run();
  ASSERT_EQ(latencies.size(), 2u);
  EXPECT_DOUBLE_EQ(latencies[0], 1130.0);      // first read: uncontended path
  EXPECT_DOUBLE_EQ(latencies[1], 2 * 1130.0);  // second: queued behind it
  EXPECT_GT(network_.queued_fetches(), 0u);
}

TEST_F(AsyncPipelineTest, CoalescedObserversSeeFailureExactlyOnce) {
  // Several requesters joined one wire fetch; the destination dies
  // mid-flight. Every observer must hear nullopt exactly once.
  core::FetchCoordinator coordinator(&network_);
  const ChunkId chunk{"object0", 1};
  const RegionId to = sim::region::kTokyo;
  std::size_t failures = 0, successes = 0;
  auto observer = [&](std::optional<SimTimeMs> l) {
    l.has_value() ? ++successes : ++failures;
  };
  ASSERT_EQ(coordinator.fetch(chunk, 0, to, 1000, observer),
            core::FetchStart::kStarted);
  ASSERT_EQ(coordinator.fetch(chunk, 0, to, 1000, observer),
            core::FetchStart::kJoined);
  ASSERT_EQ(coordinator.fetch(chunk, 0, to, 1000, observer),
            core::FetchStart::kJoined);
  loop_.run_until(1.0);
  network_.fail_region(to);
  loop_.run();
  EXPECT_EQ(failures, 3u);
  EXPECT_EQ(successes, 0u);
  EXPECT_FALSE(coordinator.in_flight(chunk));
}

TEST_F(AsyncPipelineTest, ExhaustedFallbacksCompleteAsFailedRead) {
  // Every region dies while a read's fetches are on the wire: with all
  // fallbacks exhausted the read must complete as a counted failure, not
  // crash decoding fewer than k chunks from a completion event.
  ClientContext c = ctx(sim::region::kFrankfurt);
  c.verify_data = true;  // pre-fix: decode of < k chunks throws
  BackendStrategy s(c);
  ReadResult result;
  bool done = false;
  s.start_read("object0", [&](const ReadResult& r) {
    result = r;
    done = true;
  });
  loop_.run_until(1.0);
  for (RegionId r = 0; r < topology_.num_regions(); ++r) {
    network_.fail_region(r);
  }
  loop_.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.failed);
  EXPECT_FALSE(result.verified);
  EXPECT_LT(result.backend_chunks, 9u);
}

TEST_F(AsyncPipelineTest, MidReadOutageFallsBackToSurvivingRegions) {
  // One region dies mid-read; its in-flight arms abort and the batch pulls
  // parity replacements from live regions — the read still decodes.
  ClientContext c = ctx(sim::region::kFrankfurt);
  c.verify_data = true;
  BackendStrategy s(c);
  ReadResult result;
  bool done = false;
  s.start_read("object0", [&](const ReadResult& r) {
    result = r;
    done = true;
  });
  loop_.run_until(1.0);
  network_.fail_region(sim::region::kTokyo);
  loop_.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.failed);
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.backend_chunks, 9u);
}

TEST_F(AsyncPipelineTest, DownRegionFallsBackAsynchronously) {
  network_.fail_region(sim::region::kTokyo);
  BackendStrategy s(ctx(sim::region::kFrankfurt));
  ReadResult result;
  bool done = false;
  s.start_read("object0", [&](const ReadResult& r) {
    result = r;
    done = true;
  });
  loop_.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(result.backend_chunks, 9u);  // parity substituted for Tokyo
}

// ----------------------------------------------------------- runner level

ExperimentConfig open_loop_config() {
  ExperimentConfig c;
  c.deployment.num_objects = 20;
  c.deployment.object_size_bytes = 9000;
  c.deployment.seed = 11;
  c.workload = WorkloadSpec::zipfian(1.1);
  c.client_regions = {sim::region::kFrankfurt, sim::region::kSydney};
  c.ops_per_run = 150;
  c.runs = 2;
  c.arrival_rate_per_s = 20.0;  // ~1 s reads => deep overlap
  c.reconfig_period_ms = 2000.0;
  return c;
}

ExperimentResult run_system(const ExperimentConfig& config,
                            const std::vector<std::string>& pairs) {
  api::ExperimentSpec spec;
  spec.experiment = config;
  for (const auto& pair : pairs) spec.set_pair(pair);
  return api::run(spec).result;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.full_hits, b.full_hits);
  EXPECT_EQ(a.partial_hits, b.partial_hits);
  EXPECT_EQ(a.wire_fetches, b.wire_fetches);
  EXPECT_EQ(a.coalesced_fetches, b.coalesced_fetches);
  EXPECT_EQ(a.queued_fetches, b.queued_fetches);
  EXPECT_EQ(a.max_queue_depth, b.max_queue_depth);
  EXPECT_EQ(a.max_net_in_flight, b.max_net_in_flight);
  EXPECT_EQ(a.max_reads_in_flight, b.max_reads_in_flight);
  // Byte-identical latency samples, not merely equal summary stats.
  const auto& sa = a.latencies.sorted_samples();
  const auto& sb = b.latencies.sorted_samples();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i], sb[i]) << "sample " << i;
  }
  EXPECT_EQ(a.duration_ms, b.duration_ms);
}

TEST(OpenLoopRunner, MultiRegionPoissonRunIsDeterministic) {
  const auto config = open_loop_config();
  const auto a = run_system(config, {"system=agar", "cache_bytes=10MB"});
  const auto b = run_system(config, {"system=agar", "cache_bytes=10MB"});
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    expect_identical(a.runs[r], b.runs[r]);
  }
  // Zipfian + overlapping reads => the in-flight table must deduplicate.
  EXPECT_GT(a.total_coalesced_fetches(), 0u);
  EXPECT_EQ(a.total_ops(), 300u);
}

TEST(OpenLoopRunner, ArrivalsOverlapUnlikeClosedLoop) {
  auto config = open_loop_config();
  const auto open = run_system(config, {"system=backend"});
  // Closed-loop with the same budget: at most num_clients reads in flight.
  config.arrival_rate_per_s = 0.0;
  config.num_clients = 2;
  const auto closed = run_system(config, {"system=backend"});
  ASSERT_EQ(open.runs.size(), 2u);
  EXPECT_GT(open.runs[0].max_reads_in_flight, 4u);
  EXPECT_LE(closed.runs[0].max_reads_in_flight, 4u);  // 2 clients x 2 regions
  // Open loop finishes the same op budget in less virtual time.
  EXPECT_GT(open.runs[0].throughput_ops_per_s(),
            closed.runs[0].throughput_ops_per_s());
}

TEST(OpenLoopRunner, SeedChangesChangeOpenLoopResults) {
  auto config = open_loop_config();
  const auto a = run_system(config, {"system=lru", "chunks=9", "cache_bytes=10MB"});
  config.deployment.seed = 999;
  const auto b = run_system(config, {"system=lru", "chunks=9", "cache_bytes=10MB"});
  EXPECT_NE(a.mean_latency_ms(), b.mean_latency_ms());
}

TEST(ClosedLoopRunner, MultiRegionClientsShareTheDeployment) {
  ExperimentConfig config;
  config.deployment.num_objects = 20;
  config.deployment.object_size_bytes = 9000;
  config.deployment.seed = 5;
  config.client_regions = {sim::region::kFrankfurt, sim::region::kSydney,
                           sim::region::kTokyo};
  config.ops_per_run = 120;
  config.runs = 1;
  config.num_clients = 2;
  config.reconfig_period_ms = 2000.0;
  const auto result = run_system(config, {"system=agar", "cache_bytes=10MB"});
  EXPECT_EQ(result.total_ops(), 120u);
  EXPECT_GT(result.runs[0].throughput_ops_per_s(), 0.0);
  // Three regions' worth of closed-loop clients overlap on the timeline.
  EXPECT_GE(result.runs[0].max_reads_in_flight, 3u);
}

}  // namespace
}  // namespace agar::client
