// LRU cache engine: recency semantics, capacity invariants, stats.
#include "cache/lru_cache.hpp"

#include <gtest/gtest.h>

namespace agar::cache {
namespace {

Bytes val(std::size_t n, std::uint8_t fill = 0xAB) { return Bytes(n, fill); }

TEST(LruCache, PutGetRoundTrip) {
  LruCache c(100);
  EXPECT_TRUE(c.put("a", val(10, 1)));
  const auto v = c.get("a");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)[0], 1);
}

TEST(LruCache, MissReturnsNullopt) {
  LruCache c(100);
  EXPECT_FALSE(c.get("nothing").has_value());
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache c(30);
  c.put("a", val(10));
  c.put("b", val(10));
  c.put("c", val(10));
  // Touch "a" so "b" is now least recent.
  (void)c.get("a");
  c.put("d", val(10));  // evicts "b"
  EXPECT_TRUE(c.contains("a"));
  EXPECT_FALSE(c.contains("b"));
  EXPECT_TRUE(c.contains("c"));
  EXPECT_TRUE(c.contains("d"));
}

TEST(LruCache, PutRefreshesRecency) {
  LruCache c(30);
  c.put("a", val(10));
  c.put("b", val(10));
  c.put("c", val(10));
  c.put("a", val(10));  // refresh
  c.put("d", val(10));  // evicts "b"
  EXPECT_TRUE(c.contains("a"));
  EXPECT_FALSE(c.contains("b"));
}

TEST(LruCache, NeverExceedsCapacity) {
  LruCache c(55);
  for (int i = 0; i < 100; ++i) {
    c.put("k" + std::to_string(i), val(10));
    EXPECT_LE(c.used_bytes(), c.capacity_bytes());
  }
}

TEST(LruCache, OversizedValueRejected) {
  LruCache c(10);
  EXPECT_FALSE(c.put("big", val(11)));
  EXPECT_EQ(c.stats().rejections, 1u);
  EXPECT_EQ(c.used_bytes(), 0u);
}

TEST(LruCache, ExactCapacityFits) {
  LruCache c(10);
  EXPECT_TRUE(c.put("exact", val(10)));
  EXPECT_EQ(c.used_bytes(), 10u);
}

TEST(LruCache, OverwriteChangesSizeAccounting) {
  LruCache c(100);
  c.put("a", val(10));
  c.put("a", val(60));
  EXPECT_EQ(c.used_bytes(), 60u);
  c.put("a", val(5));
  EXPECT_EQ(c.used_bytes(), 5u);
}

TEST(LruCache, OverwriteLargerMayEvictOthers) {
  LruCache c(30);
  c.put("a", val(10));
  c.put("b", val(10));
  c.put("c", val(10));
  c.put("a", val(25));  // grows; must evict b (LRU among others)
  EXPECT_LE(c.used_bytes(), 30u);
  EXPECT_TRUE(c.contains("a"));
}

TEST(LruCache, EraseFreesSpace) {
  LruCache c(20);
  c.put("a", val(10));
  EXPECT_TRUE(c.erase("a"));
  EXPECT_FALSE(c.erase("a"));
  EXPECT_EQ(c.used_bytes(), 0u);
  EXPECT_FALSE(c.contains("a"));
}

TEST(LruCache, ClearEmptiesEverything) {
  LruCache c(100);
  c.put("a", val(10));
  c.put("b", val(10));
  c.clear();
  EXPECT_EQ(c.used_bytes(), 0u);
  EXPECT_TRUE(c.keys().empty());
  EXPECT_EQ(c.stats().evictions, 2u);
}

TEST(LruCache, EvictionCandidateIsOldest) {
  LruCache c(100);
  EXPECT_FALSE(c.eviction_candidate().has_value());
  c.put("a", val(10));
  c.put("b", val(10));
  EXPECT_EQ(c.eviction_candidate(), "a");
  (void)c.get("a");
  EXPECT_EQ(c.eviction_candidate(), "b");
}

TEST(LruCache, StatsAccumulate) {
  LruCache c(20);
  c.put("a", val(10));
  c.put("b", val(10));
  (void)c.get("a");   // hit
  (void)c.get("zz");  // miss
  c.put("c", val(10));  // evicts one
  const auto& s = c.stats();
  EXPECT_EQ(s.puts, 3u);
  EXPECT_EQ(s.admissions, 3u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(LruCache, KeysReflectsResidency) {
  LruCache c(100);
  c.put("a", val(10));
  c.put("b", val(10));
  auto keys = c.keys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
}

TEST(LruCache, ContainsHasNoRecencyEffect) {
  LruCache c(20);
  c.put("a", val(10));
  c.put("b", val(10));
  // contains("a") must NOT refresh "a".
  EXPECT_TRUE(c.contains("a"));
  c.put("c", val(10));  // evicts "a" (still LRU)
  EXPECT_FALSE(c.contains("a"));
}

TEST(LruCache, ManyInsertionsStressCapacity) {
  LruCache c(1000);
  for (int i = 0; i < 10000; ++i) {
    c.put("k" + std::to_string(i % 177), val(1 + i % 97));
    ASSERT_LE(c.used_bytes(), 1000u);
  }
}

}  // namespace
}  // namespace agar::cache
