// Fault-tolerant fetch policies: timeout, retry/backoff, hedging, and the
// down-region-discovery-costs-a-timeout semantics, plus the spec surface
// (fetch= / fetch.* keys) and the end-to-end degraded-read flow.
#include "client/fetch_policy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"

namespace agar::client {
namespace {

class FetchPolicyTest : public ::testing::Test {
 protected:
  FetchPolicyTest()
      : topology_(sim::aws_six_regions()),
        network_(sim::LatencyModel(&topology_, {}, 42)) {
    network_.bind_loop(&loop_);
  }

  /// Deterministic params: no backoff jitter, hedging off unless asked.
  static FaultTolerantParams quick(std::size_t retries,
                                   double hedge_after_mult = 0.0) {
    FaultTolerantParams p;
    p.retries = retries;
    p.backoff_ms = 5.0;
    p.backoff_mult = 2.0;
    p.jitter = 0.0;
    p.hedge_after_mult = hedge_after_mult;
    return p;
  }

  sim::Topology topology_;
  sim::Network network_;
  sim::EventLoop loop_;
};

TEST_F(FetchPolicyTest, PassThroughKeepsFailFastSemantics) {
  PassThroughFetchPolicy policy(&network_);
  EXPECT_EQ(policy.name(), "none");

  std::optional<SimTimeMs> out;
  ASSERT_TRUE(policy.begin_fetch(sim::region::kFrankfurt, sim::region::kDublin,
                                 1000, [&](auto l) { out = l; }));
  loop_.run();
  ASSERT_TRUE(out.has_value());

  // A down region is refused synchronously — exactly the raw network.
  network_.fail_region(sim::region::kTokyo);
  EXPECT_FALSE(policy.begin_fetch(sim::region::kFrankfurt,
                                  sim::region::kTokyo, 1000, [](auto) {}));
  // Pass-through never touches the telemetry.
  EXPECT_EQ(policy.stats().attempts, 0u);
  EXPECT_EQ(policy.region_samples(sim::region::kDublin), 0u);
}

TEST_F(FetchPolicyTest, InvalidParamsThrow) {
  auto bad = quick(1);
  bad.timeout_mult = 0.0;
  EXPECT_THROW(FaultTolerantFetchPolicy(&network_, 1, bad),
               std::invalid_argument);
  bad = quick(1);
  bad.backoff_mult = 0.5;
  EXPECT_THROW(FaultTolerantFetchPolicy(&network_, 1, bad),
               std::invalid_argument);
  bad = quick(1);
  bad.jitter = 1.0;
  EXPECT_THROW(FaultTolerantFetchPolicy(&network_, 1, bad),
               std::invalid_argument);
  EXPECT_THROW(PassThroughFetchPolicy(nullptr), std::invalid_argument);
}

TEST_F(FetchPolicyTest, NameReflectsHedging) {
  EXPECT_EQ(FaultTolerantFetchPolicy(&network_, 1, quick(1)).name(), "retry");
  EXPECT_EQ(FaultTolerantFetchPolicy(&network_, 1, quick(1, 2.0)).name(),
            "hedge");
}

// Where the raw network refuses a down region synchronously, the policy
// accepts the fetch and the caller learns about the dead region only when
// the timeout expires — failure discovery is priced.
TEST_F(FetchPolicyTest, DownRegionDiscoveryCostsTheTimeout) {
  const RegionId to = sim::region::kTokyo;
  network_.fail_region(to);
  FaultTolerantFetchPolicy policy(&network_, 7, quick(/*retries=*/0));

  std::optional<SimTimeMs> out = SimTimeMs{-1.0};
  SimTimeMs delivered_at = -1.0;
  ASSERT_TRUE(policy.begin_fetch(sim::region::kFrankfurt, to, 1000,
                                 [&](auto l) {
                                   out = l;
                                   delivered_at = loop_.now();
                                 }));
  loop_.run();

  EXPECT_FALSE(out.has_value());
  const SimTimeMs expected_timeout =
      std::max(quick(0).timeout_min_ms,
               quick(0).timeout_mult *
                   network_.model().expected_backend_fetch_ms(
                       sim::region::kFrankfurt, to, 1000));
  EXPECT_DOUBLE_EQ(delivered_at, expected_timeout);
  EXPECT_EQ(policy.stats().attempts, 1u);
  EXPECT_EQ(policy.stats().timeouts, 1u);
  EXPECT_EQ(policy.stats().exhausted, 1u);
  EXPECT_EQ(policy.stats().retries, 0u);
}

// A region that comes back between attempts is rescued by the retry path:
// attempt 1 times out, the (jitter-free) backoff elapses, attempt 2 lands.
TEST_F(FetchPolicyTest, RetryAfterTimeoutSucceedsOnceRegionReturns) {
  const RegionId to = sim::region::kSydney;
  network_.fail_region(to);
  FaultTolerantFetchPolicy policy(&network_, 7, quick(/*retries=*/2));

  const SimTimeMs timeout =
      std::max(quick(2).timeout_min_ms,
               quick(2).timeout_mult *
                   network_.model().expected_backend_fetch_ms(
                       sim::region::kFrankfurt, to, 1000));
  // Restore after the first timeout but before the retry goes out.
  loop_.schedule_in(timeout + 1.0, [&] { network_.restore_region(to); });

  std::optional<SimTimeMs> out;
  std::size_t calls = 0;
  ASSERT_TRUE(policy.begin_fetch(sim::region::kFrankfurt, to, 1000,
                                 [&](auto l) {
                                   out = l;
                                   ++calls;
                                 }));
  loop_.run();

  EXPECT_EQ(calls, 1u);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(policy.stats().attempts, 2u);
  EXPECT_EQ(policy.stats().timeouts, 1u);
  EXPECT_EQ(policy.stats().retries, 1u);
  EXPECT_EQ(policy.stats().exhausted, 0u);
  // One failure then one success observed against the region's EWMA.
  EXPECT_EQ(policy.region_samples(to), 2u);
  EXPECT_LT(policy.region_success_ewma(to), 1.0);
}

TEST_F(FetchPolicyTest, ExhaustionDeliversNulloptExactlyOnce) {
  const RegionId to = sim::region::kVirginia;
  network_.fail_region(to);
  FaultTolerantFetchPolicy policy(&network_, 7, quick(/*retries=*/2));

  std::size_t calls = 0;
  std::optional<SimTimeMs> out = SimTimeMs{-1.0};
  ASSERT_TRUE(policy.begin_fetch(sim::region::kFrankfurt, to, 1000,
                                 [&](auto l) {
                                   out = l;
                                   ++calls;
                                 }));
  loop_.run();

  EXPECT_EQ(calls, 1u);
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(policy.stats().attempts, 3u);  // retries + 1
  EXPECT_EQ(policy.stats().timeouts, 3u);
  EXPECT_EQ(policy.stats().retries, 2u);
  EXPECT_EQ(policy.stats().exhausted, 1u);
  EXPECT_EQ(policy.region_samples(to), 3u);
}

// Under a heavy straggler tail, hedges go out for the slow primaries and a
// healthy share of them wins the race; the losing duplicates are counted
// as wasted work, never as a second completion.
TEST_F(FetchPolicyTest, HedgingCutsTheStragglerTail) {
  const RegionId to = sim::region::kDublin;
  network_.model().set_region_straggle(to, /*frac=*/0.5, /*mult=*/20.0);

  auto params = quick(/*retries=*/0, /*hedge_after_mult=*/0.5);
  params.timeout_mult = 100.0;  // the timeout never interferes here
  FaultTolerantFetchPolicy policy(&network_, 7, params);

  std::size_t successes = 0;
  std::size_t calls = 0;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(policy.begin_fetch(sim::region::kFrankfurt, to, 1000,
                                   [&](auto l) {
                                     ++calls;
                                     if (l.has_value()) ++successes;
                                   }));
    loop_.run();
  }

  EXPECT_EQ(calls, 200u);
  EXPECT_EQ(successes, 200u);  // every fetch completes exactly once
  const auto& s = policy.stats();
  EXPECT_EQ(s.timeouts, 0u);
  EXPECT_GT(s.hedges_issued, 0u);
  EXPECT_GT(s.hedges_won, 0u);     // a hedge really beat a straggler
  EXPECT_GT(s.hedges_wasted, 0u);  // and some primaries still won the race
  EXPECT_LE(s.hedges_won + s.hedges_wasted, s.hedges_issued);
  EXPECT_EQ(s.attempts, 200u + s.hedges_issued);
}

// ------------------------------------------------------------ spec surface

TEST(FetchPolicySpec, KeysRoundTripAndValidate) {
  api::ExperimentSpec spec;
  spec.set("fetch", "retry");
  spec.set("fetch.retries", "1");
  EXPECT_EQ(spec.experiment.fetch_policy, "retry");
  spec.validate();
  EXPECT_NE(spec.to_json().find("\"fetch\": \"retry\""), std::string::npos);
  EXPECT_NE(spec.label().find("+retry"), std::string::npos);

  // The default stays out of the JSON so existing goldens never change.
  EXPECT_EQ(api::ExperimentSpec{}.to_json().find("fetch"), std::string::npos);

  spec.set("fetch", "bogus");
  EXPECT_THROW(spec.validate(), std::exception);
  spec.set("fetch", "hedge");
  spec.set("fetch.no_such_param", "1");
  EXPECT_THROW(spec.validate(), std::exception);
}

// ----------------------------------------------------------- end to end

// A mid-run outage with a retry policy: reads that lose an arm to the dead
// region but still assemble enough chunks are counted degraded, and the
// policy's telemetry flows all the way into the merged RunResult.
TEST(FetchPolicyEndToEnd, OutageProducesDegradedReadsAndTelemetry) {
  api::ExperimentSpec spec;
  spec.system = "agar";
  spec.experiment.deployment.num_objects = 25;
  spec.experiment.deployment.object_size_bytes = 9000;
  spec.experiment.deployment.seed = 7;
  spec.experiment.ops_per_run = 300;
  spec.experiment.runs = 1;
  spec.set("regions", "frankfurt,dublin");
  // Virginia is on the cheapest-k path for both client regions, so the
  // outage forces reads onto their fallback arms (unlike a far region the
  // planner never picks).
  spec.set("scenario", "200 fail_region region=virginia");
  spec.set("fetch", "retry");
  spec.set("fetch.retries", "1");
  spec.set("fetch.timeout_min_ms", "5");
  spec.params.set("cache_bytes", "64KB");

  const auto result = api::run(spec).result;
  ASSERT_EQ(result.runs.size(), 1u);
  const auto& run = result.runs[0];
  EXPECT_GT(run.ops, 0u);
  EXPECT_GT(run.fetch_attempts, 0u);
  EXPECT_GT(run.degraded_reads, 0u);
  ASSERT_EQ(run.region_success_ewma.size(),
            sim::aws_six_regions().num_regions());
  for (const double ewma : run.region_success_ewma) {
    EXPECT_GE(ewma, 0.0);
    EXPECT_LE(ewma, 1.0);
  }
}

}  // namespace
}  // namespace agar::client
