// Regional bucket: storage accounting and counters.
#include "store/bucket.hpp"

#include <gtest/gtest.h>

namespace agar::store {
namespace {

TEST(Bucket, PutThenGet) {
  Bucket b;
  b.put({"k", 0}, Bytes{1, 2, 3});
  const auto v = b.get({"k", 0});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(Bytes(v->begin(), v->end()), (Bytes{1, 2, 3}));
}

TEST(Bucket, GetMissing) {
  Bucket b;
  EXPECT_FALSE(b.get({"k", 0}).has_value());
}

TEST(Bucket, ChunksWithSameKeyDifferentIndexAreDistinct) {
  Bucket b;
  b.put({"k", 0}, Bytes{1});
  b.put({"k", 1}, Bytes{2});
  EXPECT_EQ(b.num_chunks(), 2u);
  EXPECT_EQ((*b.get({"k", 0}))[0], 1);
  EXPECT_EQ((*b.get({"k", 1}))[0], 2);
}

TEST(Bucket, OverwriteUpdatesBytes) {
  Bucket b;
  b.put({"k", 0}, Bytes(10));
  EXPECT_EQ(b.total_bytes(), 10u);
  b.put({"k", 0}, Bytes(4));
  EXPECT_EQ(b.total_bytes(), 4u);
  EXPECT_EQ(b.num_chunks(), 1u);
}

TEST(Bucket, EraseRemovesAndAccounts) {
  Bucket b;
  b.put({"k", 0}, Bytes(8));
  b.put({"k", 1}, Bytes(8));
  EXPECT_TRUE(b.erase({"k", 0}));
  EXPECT_FALSE(b.erase({"k", 0}));
  EXPECT_EQ(b.total_bytes(), 8u);
  EXPECT_EQ(b.num_chunks(), 1u);
}

TEST(Bucket, CountersTrackTraffic) {
  Bucket b;
  b.put({"k", 0}, Bytes(1));
  (void)b.get({"k", 0});
  (void)b.get({"miss", 0});
  EXPECT_EQ(b.puts(), 1u);
  EXPECT_EQ(b.gets(), 2u);
}

TEST(Bucket, ContainsHasNoSideEffects) {
  Bucket b;
  b.put({"k", 0}, Bytes(1));
  const auto gets_before = b.gets();
  EXPECT_TRUE(b.contains({"k", 0}));
  EXPECT_FALSE(b.contains({"k", 1}));
  EXPECT_EQ(b.gets(), gets_before);
}

}  // namespace
}  // namespace agar::store
