// Paxos-backed replicated log: ordering, slot occupation, failures.
#include <gtest/gtest.h>

#include "paxos/replicated_log.hpp"
#include "sim/topology.hpp"

namespace agar::paxos {
namespace {

class ReplicatedLogTest : public ::testing::Test {
 protected:
  ReplicatedLogTest()
      : topology_(sim::aws_six_regions()),
        network_(sim::LatencyModel(&topology_, {}, 13)),
        log_(6, &network_) {}

  sim::Topology topology_;
  sim::Network network_;
  ReplicatedLog log_;
};

TEST_F(ReplicatedLogTest, ValidatesConstruction) {
  EXPECT_THROW(ReplicatedLog(0, &network_), std::invalid_argument);
  EXPECT_THROW(ReplicatedLog(6, nullptr), std::invalid_argument);
}

TEST_F(ReplicatedLogTest, AppendsLandInOrder) {
  const auto a = log_.append(0, "first");
  const auto b = log_.append(0, "second");
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.slot, 0u);
  EXPECT_EQ(b.slot, 1u);
  EXPECT_EQ(log_.learned(0), "first");
  EXPECT_EQ(log_.learned(1), "second");
}

TEST_F(ReplicatedLogTest, DecidedPrefixGrows) {
  EXPECT_EQ(log_.decided_prefix(), 0u);
  (void)log_.append(0, "a");
  EXPECT_EQ(log_.decided_prefix(), 1u);
  (void)log_.append(3, "b");
  EXPECT_EQ(log_.decided_prefix(), 2u);
}

TEST_F(ReplicatedLogTest, UnknownSlotIsNullopt) {
  EXPECT_FALSE(log_.learned(42).has_value());
}

TEST_F(ReplicatedLogTest, AppendsFromDifferentRegionsSerialize) {
  const auto a = log_.append(sim::region::kFrankfurt, "fra");
  const auto b = log_.append(sim::region::kSydney, "syd");
  const auto c = log_.append(sim::region::kTokyo, "tyo");
  ASSERT_TRUE(a.ok && b.ok && c.ok);
  // All slots distinct, records retrievable in order.
  EXPECT_EQ(log_.learned(a.slot), "fra");
  EXPECT_EQ(log_.learned(b.slot), "syd");
  EXPECT_EQ(log_.learned(c.slot), "tyo");
  EXPECT_NE(a.slot, b.slot);
  EXPECT_NE(b.slot, c.slot);
}

TEST_F(ReplicatedLogTest, AppendChargesConsensusLatency) {
  const auto out = log_.append(sim::region::kFrankfurt, "x");
  ASSERT_TRUE(out.ok);
  // Two phases x quorum RTT; must be positive and bounded by a couple of
  // worst-case WAN round trips.
  EXPECT_GT(out.latency_ms, 0.0);
  EXPECT_LT(out.latency_ms, 4000.0);
}

TEST_F(ReplicatedLogTest, FailsWithoutQuorum) {
  network_.fail_region(1);
  network_.fail_region(2);
  network_.fail_region(3);
  const auto out = log_.append(0, "doomed");
  EXPECT_FALSE(out.ok);
}

TEST_F(ReplicatedLogTest, RecoversAfterRegionRestoration) {
  network_.fail_region(1);
  network_.fail_region(2);
  network_.fail_region(3);
  ASSERT_FALSE(log_.append(0, "lost").ok);
  network_.restore_region(1);
  network_.restore_region(2);
  network_.restore_region(3);
  const auto out = log_.append(0, "ok");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(log_.learned(out.slot), "ok");
}

TEST_F(ReplicatedLogTest, MinorityFailureToleratedWithLatencyCost) {
  network_.fail_region(sim::region::kDublin);
  network_.fail_region(sim::region::kVirginia);
  const auto out = log_.append(sim::region::kFrankfurt, "v");
  EXPECT_TRUE(out.ok);
}

TEST_F(ReplicatedLogTest, CleanAppendsTryExactlyOneSlot) {
  // Without contention the slot walk terminates immediately — the
  // latency accounting (and the collab tier's append p50/p99) would be
  // inflated by any silent extra round.
  for (int i = 0; i < 5; ++i) {
    const auto out =
        log_.append(static_cast<RegionId>(i % 6), "r" + std::to_string(i));
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.slots_tried, 1u) << i;
  }
}

TEST_F(ReplicatedLogTest, AppliesInSlotOrderRegardlessOfAppendOrigin) {
  // The consumer contract the collab config log and the coherence
  // coordinator both rely on: applying `learned(0..decided_prefix)` yields
  // every record exactly once, in the order consensus serialized them —
  // which is append order, independent of which region proposed what.
  const std::vector<std::pair<RegionId, std::string>> appends = {
      {sim::region::kSydney, "cfg-a"},   {sim::region::kFrankfurt, "cfg-b"},
      {sim::region::kTokyo, "cfg-c"},    {sim::region::kSaoPaulo, "cfg-d"},
      {sim::region::kVirginia, "cfg-e"},
  };
  for (const auto& [region, record] : appends) {
    ASSERT_TRUE(log_.append(region, record).ok);
  }
  std::vector<std::string> applied;
  for (std::size_t slot = 0; slot < log_.decided_prefix(); ++slot) {
    const auto record = log_.learned(slot);
    ASSERT_TRUE(record.has_value());
    applied.push_back(*record);
  }
  ASSERT_EQ(applied.size(), appends.size());
  for (std::size_t i = 0; i < appends.size(); ++i) {
    EXPECT_EQ(applied[i], appends[i].second) << "slot " << i;
  }
}

TEST_F(ReplicatedLogTest, ManyAppendsStayConsistent) {
  for (int i = 0; i < 50; ++i) {
    const auto out =
        log_.append(static_cast<RegionId>(i % 6), "r" + std::to_string(i));
    ASSERT_TRUE(out.ok) << i;
    ASSERT_EQ(out.slot, static_cast<std::size_t>(i));
  }
  EXPECT_EQ(log_.decided_prefix(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(log_.learned(static_cast<std::size_t>(i)),
              "r" + std::to_string(i));
  }
}

}  // namespace
}  // namespace agar::paxos
