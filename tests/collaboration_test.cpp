// Cache collaboration extension (§VI): broadcast, overlap, peer-aware costs.
#include "core/collaboration.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace agar::core {
namespace {

class CollaborationTest : public ::testing::Test {
 protected:
  CollaborationTest()
      : topology_(sim::aws_six_regions()),
        network_(sim::LatencyModel(&topology_, {}, 31)),
        backend_(6, ec::CodecParams{9, 3},
                 std::make_shared<ec::RoundRobinPlacement>(false)) {
    for (int i = 0; i < 6; ++i) {
      backend_.register_object("object" + std::to_string(i), 1_MB);
    }
  }

  std::unique_ptr<AgarNode> make_node(RegionId region) {
    AgarNodeParams p;
    p.region = region;
    p.cache_capacity_bytes = 10_MB;
    p.cache_manager.candidate_weights = {1, 3, 5, 7, 9};
    auto node = std::make_unique<AgarNode>(&backend_, &network_, p);
    node->warm_up();
    return node;
  }

  sim::Topology topology_;
  sim::Network network_;
  store::BackendCluster backend_;
};

TEST_F(CollaborationTest, BroadcastContainsConfiguredChunks) {
  auto node = make_node(sim::region::kFrankfurt);
  for (int i = 0; i < 50; ++i) (void)node->plan_read("object0");
  node->reconfigure();
  const PeerInfo info = broadcast_info(*node);
  EXPECT_EQ(info.region, sim::region::kFrankfurt);
  std::size_t expected = 0;
  for (const auto& [key, opt] :
       node->cache_manager().current().entries) {
    expected += opt.chunks.size();
  }
  EXPECT_EQ(info.configured_chunks.size(), expected);
  EXPECT_FALSE(info.popularity.empty());
}

TEST_F(CollaborationTest, AddNullNodeThrows) {
  CollaborationGroup group;
  EXPECT_THROW(group.add_node(nullptr), std::invalid_argument);
}

TEST_F(CollaborationTest, ExchangePublishesAllMembers) {
  auto fra = make_node(sim::region::kFrankfurt);
  auto dub = make_node(sim::region::kDublin);
  CollaborationGroup group;
  group.add_node(fra.get());
  group.add_node(dub.get());
  group.exchange();
  EXPECT_EQ(group.peers().size(), 2u);
  EXPECT_EQ(group.peers_of(sim::region::kFrankfurt).size(), 1u);
  EXPECT_EQ(group.peers_of(sim::region::kFrankfurt)[0].region,
            sim::region::kDublin);
}

TEST_F(CollaborationTest, OverlapBetweenSimilarWorkloads) {
  auto fra = make_node(sim::region::kFrankfurt);
  auto dub = make_node(sim::region::kDublin);
  // Same hot object in both regions -> overlapping configurations.
  for (int i = 0; i < 50; ++i) {
    (void)fra->plan_read("object0");
    (void)dub->plan_read("object0");
  }
  fra->reconfigure();
  dub->reconfigure();
  CollaborationGroup group;
  group.add_node(fra.get());
  group.add_node(dub.get());
  group.exchange();
  const OverlapReport report =
      group.overlap(sim::region::kFrankfurt, sim::region::kDublin);
  EXPECT_GT(report.chunks_a, 0u);
  EXPECT_GT(report.chunks_b, 0u);
  EXPECT_GT(report.shared, 0u);
  EXPECT_GT(report.shared_fraction(), 0.0);
  EXPECT_LE(report.shared_fraction(), 1.0);
}

TEST_F(CollaborationTest, OverlapUnknownRegionThrows) {
  CollaborationGroup group;
  auto fra = make_node(sim::region::kFrankfurt);
  group.add_node(fra.get());
  group.exchange();
  EXPECT_THROW((void)group.overlap(sim::region::kFrankfurt,
                                   sim::region::kSydney),
               std::invalid_argument);
}

TEST_F(CollaborationTest, PeerAwareCostsDiscountNearbyPeerChunks) {
  // Dublin caches chunk "object0#4"; a Frankfurt planner should see that
  // chunk cheaper than its Tokyo home region.
  PeerInfo dublin;
  dublin.region = sim::region::kDublin;
  dublin.configured_chunks.insert(ChunkId{"object0", 4}.cache_key());

  std::vector<ChunkCost> costs;
  for (ChunkIndex i = 0; i < 12; ++i) {
    const RegionId region = i % 6;
    costs.push_back(ChunkCost{
        i, region,
        topology_.base_latency_ms(sim::region::kFrankfurt, region)});
  }
  const auto adjusted =
      peer_aware_costs(costs, "object0", {dublin}, topology_,
                       sim::region::kFrankfurt, 0.75, 400.0);
  // Chunk 4 (Tokyo, 1130 ms base) now costs the Dublin peer fetch:
  // 100 ms * 0.75 = 75 ms.
  EXPECT_DOUBLE_EQ(adjusted[4].latency_ms, 75.0);
  // Other chunks unchanged.
  EXPECT_DOUBLE_EQ(adjusted[5].latency_ms, costs[5].latency_ms);
}

TEST_F(CollaborationTest, PeerAwareCostsIgnoreDistantPeers) {
  PeerInfo sydney;
  sydney.region = sim::region::kSydney;
  sydney.configured_chunks.insert(ChunkId{"object0", 4}.cache_key());

  std::vector<ChunkCost> costs{{4, sim::region::kTokyo, 1100.0}};
  // Sydney is 1200 ms from Frankfurt > max_peer_ms 400: no discount.
  const auto adjusted = peer_aware_costs(
      costs, "object0", {sydney}, topology_, sim::region::kFrankfurt);
  EXPECT_DOUBLE_EQ(adjusted[0].latency_ms, 1100.0);
}

TEST_F(CollaborationTest, PeerAwareCostsNeverIncrease) {
  PeerInfo dublin;
  dublin.region = sim::region::kDublin;
  dublin.configured_chunks.insert(ChunkId{"object0", 0}.cache_key());
  // Local chunk already cheaper than the peer fetch (100 ms * 0.75 = 75):
  // keep the original.
  std::vector<ChunkCost> costs{{0, sim::region::kFrankfurt, 70.0}};
  const auto adjusted = peer_aware_costs(
      costs, "object0", {dublin}, topology_, sim::region::kFrankfurt);
  EXPECT_DOUBLE_EQ(adjusted[0].latency_ms, 70.0);
}

}  // namespace
}  // namespace agar::core
