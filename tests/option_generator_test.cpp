// Caching-option generation (§IV-A), including the paper's worked example
// from Table I.
#include "core/option_generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace agar::core {
namespace {

// The paper's Table I scenario: client in Frankfurt, RS(9, 3), two chunks
// per region, latencies 80/200/600/1400/3400/4600 ms. Chunk i lives in
// region i % 6 (Frankfurt=0 ... Sydney=5).
std::vector<ChunkCost> table1_costs() {
  const std::vector<double> latency = {80, 200, 600, 1400, 3400, 4600};
  std::vector<ChunkCost> costs;
  for (ChunkIndex i = 0; i < 12; ++i) {
    costs.push_back(ChunkCost{i, i % 6, latency[i % 6]});
  }
  return costs;
}

OptionGeneratorParams paper_params() {
  OptionGeneratorParams p;
  p.k = 9;
  p.m = 3;
  p.cache_latency_ms = 55.0;
  p.candidate_weights = {1, 3, 5, 7, 9};
  return p;
}

TEST(OptionGenerator, ValidatesParams) {
  OptionGeneratorParams p;
  p.k = 0;
  EXPECT_THROW(OptionGenerator{p}, std::invalid_argument);
  p = OptionGeneratorParams{};
  p.candidate_weights = {0};
  EXPECT_THROW(OptionGenerator{p}, std::invalid_argument);
  p.candidate_weights = {10};  // > k = 9
  EXPECT_THROW(OptionGenerator{p}, std::invalid_argument);
}

TEST(OptionGenerator, DefaultWeightsAreOneToK) {
  OptionGeneratorParams p;
  p.k = 4;
  p.m = 2;
  const OptionGenerator gen(p);
  EXPECT_EQ(gen.params().candidate_weights,
            (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(OptionGenerator, WrongChunkCountThrows) {
  const OptionGenerator gen(paper_params());
  std::vector<ChunkCost> costs(5);
  EXPECT_THROW((void)gen.generate("k", costs, 1.0), std::invalid_argument);
}

TEST(OptionGenerator, PaperExampleWeightOne) {
  // §IV example: popularity 80. The m=3 furthest chunks (2x Sydney, 1x
  // Tokyo) are discarded. Weight 1 caches the remaining Tokyo chunk; the
  // improvement is Tokyo - Sao Paulo = 3400 - 1400 = 2000, value 160,000.
  const OptionGenerator gen(paper_params());
  const auto options = gen.generate("key1", table1_costs(), 80.0);
  ASSERT_EQ(options.size(), 5u);

  const CachingOption& w1 = options[0];
  EXPECT_EQ(w1.weight, 1u);
  ASSERT_EQ(w1.chunks.size(), 1u);
  // The cached chunk must be a Tokyo chunk (region 4 -> indices 4 or 10).
  EXPECT_TRUE(w1.chunks[0] == 4 || w1.chunks[0] == 10);
  EXPECT_DOUBLE_EQ(w1.value, 80.0 * 2000.0);
}

TEST(OptionGenerator, PaperExampleAbsoluteValueOfWeightThree) {
  // Caching 3 chunks (Tokyo + both Sao Paulo) leaves N. Virginia as the
  // furthest contacted region: improvement 3400 - 600 = 2800. The paper's
  // incremental phrasing (160,000 then 64,000 for the extra two chunks)
  // sums to the same total: 80 * 2800 = 224,000 (see DESIGN.md).
  const OptionGenerator gen(paper_params());
  const auto options = gen.generate("key1", table1_costs(), 80.0);
  const CachingOption& w3 = options[1];
  EXPECT_EQ(w3.weight, 3u);
  EXPECT_DOUBLE_EQ(w3.value, 80.0 * 2800.0);
}

TEST(OptionGenerator, FullWeightUsesCacheLatencyFloor) {
  const OptionGenerator gen(paper_params());
  const auto options = gen.generate("key1", table1_costs(), 1.0);
  const CachingOption& w9 = options.back();
  EXPECT_EQ(w9.weight, 9u);
  // Everything needed cached: improvement = 3400 - cache latency.
  EXPECT_DOUBLE_EQ(w9.value, 3400.0 - 55.0);
  EXPECT_DOUBLE_EQ(w9.expected_latency_ms, 55.0);
}

TEST(OptionGenerator, DiscardsTheMFurthestChunks) {
  const OptionGenerator gen(paper_params());
  const auto options = gen.generate("key1", table1_costs(), 1.0);
  // No option may cache a Sydney chunk (5, 11) and at most one Tokyo chunk
  // (the other was discarded as one of the m furthest).
  for (const auto& opt : options) {
    std::size_t tokyo = 0;
    for (const ChunkIndex c : opt.chunks) {
      EXPECT_NE(c % 6, 5u) << "cached a Sydney chunk";
      if (c % 6 == 4) ++tokyo;
    }
    EXPECT_LE(tokyo, 1u);
  }
}

TEST(OptionGenerator, CachesMostDistantFirst) {
  const OptionGenerator gen(paper_params());
  const auto options = gen.generate("key1", table1_costs(), 1.0);
  // Weight 5 caches Tokyo x1, Sao Paulo x2, N. Virginia x2.
  const CachingOption& w5 = options[2];
  std::vector<RegionId> regions;
  for (const ChunkIndex c : w5.chunks) regions.push_back(c % 6);
  std::sort(regions.begin(), regions.end());
  EXPECT_EQ(regions, (std::vector<RegionId>{2, 2, 3, 3, 4}));
}

TEST(OptionGenerator, ValueScalesWithPopularity) {
  const OptionGenerator gen(paper_params());
  const auto low = gen.generate("k", table1_costs(), 1.0);
  const auto high = gen.generate("k", table1_costs(), 10.0);
  for (std::size_t i = 0; i < low.size(); ++i) {
    EXPECT_DOUBLE_EQ(high[i].value, low[i].value * 10.0);
  }
}

TEST(OptionGenerator, ValuesAreMonotoneInWeight) {
  const OptionGenerator gen(paper_params());
  const auto options = gen.generate("k", table1_costs(), 5.0);
  for (std::size_t i = 1; i < options.size(); ++i) {
    EXPECT_GE(options[i].value, options[i - 1].value);
  }
}

TEST(OptionGenerator, ExpectedLatencyMatchesResidualChunk) {
  const OptionGenerator gen(paper_params());
  const auto options = gen.generate("k", table1_costs(), 1.0);
  // After caching 1 chunk the furthest remaining is Sao Paulo.
  EXPECT_DOUBLE_EQ(options[0].expected_latency_ms, 1400.0);
  // After caching 5 the furthest remaining is Dublin (200).
  EXPECT_DOUBLE_EQ(options[2].expected_latency_ms, 200.0);
}

TEST(OptionGenerator, UniformLatencyYieldsLittleValue) {
  // All regions equidistant: caching fewer than k chunks cannot improve the
  // bottleneck, so only the full-weight option has value.
  OptionGeneratorParams p;
  p.k = 4;
  p.m = 2;
  p.cache_latency_ms = 10.0;
  const OptionGenerator gen(p);
  std::vector<ChunkCost> costs;
  for (ChunkIndex i = 0; i < 6; ++i) costs.push_back({i, i, 500.0});
  const auto options = gen.generate("k", costs, 1.0);
  for (const auto& opt : options) {
    if (opt.weight < 4) {
      EXPECT_DOUBLE_EQ(opt.value, 0.0) << opt.weight;
    } else {
      EXPECT_DOUBLE_EQ(opt.value, 490.0);
    }
  }
}

TEST(OptionGenerator, ZeroPopularityZeroValue) {
  const OptionGenerator gen(paper_params());
  for (const auto& opt : gen.generate("k", table1_costs(), 0.0)) {
    EXPECT_DOUBLE_EQ(opt.value, 0.0);
  }
}

TEST(OptionGenerator, WeightEqualsChunkCount) {
  const OptionGenerator gen(paper_params());
  for (const auto& opt : gen.generate("k", table1_costs(), 2.0)) {
    EXPECT_EQ(opt.weight, opt.chunks.size());
    EXPECT_EQ(opt.weight_units, opt.weight);
  }
}

}  // namespace
}  // namespace agar::core
