// Write-capable client: data-path latency, durability, coherence
// integration, read-your-writes through an Agar cache.
#include <gtest/gtest.h>

#include <memory>

#include "client/agar_strategy.hpp"
#include "client/writer.hpp"

namespace agar::client {
namespace {

class WriterTest : public ::testing::Test {
 protected:
  WriterTest()
      : topology_(sim::aws_six_regions()),
        network_(sim::LatencyModel(&topology_, zero_jitter(), 9)),
        backend_(6, ec::CodecParams{9, 3},
                 std::make_shared<ec::RoundRobinPlacement>(false)),
        coherence_(6, &network_) {
    store::populate_working_set(backend_, 3, 9000);
  }

  static sim::LatencyModelParams zero_jitter() {
    sim::LatencyModelParams p;
    p.jitter_fraction = 0.0;
    p.wan_bandwidth_mbps = std::numeric_limits<double>::infinity();
    p.cache_bandwidth_mbps = std::numeric_limits<double>::infinity();
    return p;
  }

  WriterContext wctx(RegionId region) {
    WriterContext c;
    c.backend = &backend_;
    c.network = &network_;
    c.region = region;
    c.encode_ms_per_mb = 0.0;
    return c;
  }

  sim::Topology topology_;
  sim::Network network_;
  store::BackendCluster backend_;
  paxos::CoherenceCoordinator coherence_;
};

TEST_F(WriterTest, NullDependenciesThrow) {
  WriterContext c;
  EXPECT_THROW(WriterClient(c, nullptr), std::invalid_argument);
}

TEST_F(WriterTest, WriteWithoutCoherenceStoresDurably) {
  WriterClient writer(wctx(sim::region::kFrankfurt), nullptr);
  const Bytes payload = deterministic_payload("new-value", 4500);
  const WriteResult r = writer.write("object0", BytesView(payload));
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.consensus_ms, 0.0);
  // Data path = slowest of all 12 uploads; from Frankfurt that is a Sydney
  // chunk at 1530 ms (writers must place the FULL stripe, parity included).
  EXPECT_DOUBLE_EQ(r.latency_ms, 1530.0);
  // Durability: the new value decodes back.
  std::vector<ec::Chunk> chunks;
  for (ChunkIndex i = 0; i < 9; ++i) {
    const auto v = backend_.get_chunk({"object0", i});
    ASSERT_TRUE(v.has_value());
    chunks.push_back(ec::Chunk{i, Bytes(v->begin(), v->end())});
  }
  EXPECT_EQ(backend_.codec().decode(4500, chunks), payload);
}

TEST_F(WriterTest, WriteWithCoherenceAddsConsensusLatency) {
  WriterClient writer(wctx(sim::region::kFrankfurt), &coherence_);
  const Bytes payload = deterministic_payload("v2", 900);
  const WriteResult r = writer.write("object1", BytesView(payload));
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.consensus_ms, 0.0);
  EXPECT_DOUBLE_EQ(r.latency_ms, 1530.0 + r.consensus_ms);
  EXPECT_EQ(r.version, 1u);
}

TEST_F(WriterTest, VersionsGrowAcrossWrites) {
  WriterClient writer(wctx(0), &coherence_);
  const Bytes payload = deterministic_payload("x", 90);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    const WriteResult r = writer.write("object2", BytesView(payload));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.version, i);
  }
  EXPECT_EQ(writer.writes_issued(), 3u);
}

TEST_F(WriterTest, WriteFailsWhenARegionIsDown) {
  network_.fail_region(sim::region::kTokyo);
  WriterClient writer(wctx(0), nullptr);
  const Bytes payload = deterministic_payload("y", 900);
  EXPECT_FALSE(writer.write("object0", BytesView(payload)).ok);
}

TEST_F(WriterTest, ReadYourWritesThroughAgarCache) {
  // Populate an Agar cache with object0, write a new value with coherence
  // attached, and check the stale cache entries vanish so the next read
  // refetches from the backend.
  ClientContext rctx;
  rctx.backend = &backend_;
  rctx.network = &network_;
  rctx.region = sim::region::kFrankfurt;
  core::AgarNodeParams node_params;
  node_params.region = sim::region::kFrankfurt;
  node_params.cache_capacity_bytes = 1_MB;
  node_params.cache_manager.candidate_weights = {1, 3, 5, 7, 9};
  AgarStrategy reader(rctx, node_params);
  reader.warm_up();

  for (int i = 0; i < 30; ++i) (void)reader.read("object0");
  reader.node().reconfigure();
  (void)reader.read("object0");                  // populates the cache
  ASSERT_TRUE(reader.read("object0").full_hit);  // served from cache

  coherence_.attach_cache(sim::region::kFrankfurt, &reader.node().cache(),
                          12);
  WriterClient writer(wctx(sim::region::kFrankfurt), &coherence_);
  const Bytes fresh = deterministic_payload("fresh-bytes", 9000);
  ASSERT_TRUE(writer.write("object0", BytesView(fresh)).ok);

  // Stale chunks were invalidated: the next read cannot be a full hit; it
  // refetches from the backend (and, as a side effect, repopulates the
  // still-configured chunks with fresh data).
  const ReadResult after = reader.read("object0");
  EXPECT_FALSE(after.full_hit);
  EXPECT_EQ(after.cache_chunks, 0u);
  // The repopulation wrote fresh bytes; the following read hits again.
  const ReadResult again = reader.read("object0");
  EXPECT_TRUE(again.partial_hit || again.full_hit);
}

}  // namespace
}  // namespace agar::client
