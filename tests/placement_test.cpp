// Round-robin placement: the paper's two-chunks-per-region layout.
#include "ec/placement.hpp"

#include <gtest/gtest.h>

#include <set>

namespace agar::ec {
namespace {

TEST(Placement, RoundRobinWithoutOffset) {
  const RoundRobinPlacement p(false);
  // Chunk i -> region i % 6, regardless of key.
  for (ChunkIndex i = 0; i < 12; ++i) {
    EXPECT_EQ(p.region_of("a", i, 6), i % 6);
    EXPECT_EQ(p.region_of("b", i, 6), i % 6);
  }
}

TEST(Placement, PaperLayoutTwoChunksPerRegion) {
  // 12 chunks over 6 regions: every region holds exactly 2 (paper Fig. 1).
  const RoundRobinPlacement p(false);
  for (RegionId r = 0; r < 6; ++r) {
    const auto chunks = p.chunks_in_region("obj", 12, r, 6);
    ASSERT_EQ(chunks.size(), 2u) << "region " << r;
    EXPECT_EQ(chunks[0], r);
    EXPECT_EQ(chunks[1], r + 6);
  }
}

TEST(Placement, ZeroRegionsThrows) {
  const RoundRobinPlacement p(false);
  EXPECT_THROW((void)p.region_of("a", 0, 0), std::invalid_argument);
}

TEST(Placement, PerKeyOffsetStaysBalanced) {
  const RoundRobinPlacement p(true);
  // Offsets differ per key but each key's stripe is still balanced.
  for (const std::string key : {"k1", "k2", "another", "x"}) {
    std::set<RegionId> seen;
    std::vector<std::size_t> counts(6, 0);
    for (ChunkIndex i = 0; i < 12; ++i) {
      const RegionId r = p.region_of(key, i, 6);
      ASSERT_LT(r, 6u);
      ++counts[r];
    }
    for (const auto c : counts) EXPECT_EQ(c, 2u) << key;
  }
}

TEST(Placement, PerKeyOffsetIsDeterministic) {
  const RoundRobinPlacement p(true);
  for (ChunkIndex i = 0; i < 12; ++i) {
    EXPECT_EQ(p.region_of("same-key", i, 6), p.region_of("same-key", i, 6));
  }
}

TEST(Placement, PerKeyOffsetActuallyVaries) {
  const RoundRobinPlacement p(true);
  // At least one pair of keys should map chunk 0 to different regions.
  std::set<RegionId> regions;
  for (int i = 0; i < 20; ++i) {
    regions.insert(p.region_of("key" + std::to_string(i), 0, 6));
  }
  EXPECT_GT(regions.size(), 1u);
}

TEST(Placement, ChunksInRegionConsistentWithRegionOf) {
  const RoundRobinPlacement p(true);
  for (RegionId r = 0; r < 5; ++r) {
    for (const ChunkIndex c : p.chunks_in_region("key", 10, r, 5)) {
      EXPECT_EQ(p.region_of("key", c, 5), r);
    }
  }
}

TEST(Placement, MoreRegionsThanChunks) {
  const RoundRobinPlacement p(false);
  // 4 chunks over 6 regions: regions 4 and 5 stay empty.
  EXPECT_TRUE(p.chunks_in_region("k", 4, 4, 6).empty());
  EXPECT_TRUE(p.chunks_in_region("k", 4, 5, 6).empty());
  EXPECT_EQ(p.chunks_in_region("k", 4, 0, 6).size(), 1u);
}

}  // namespace
}  // namespace agar::ec
