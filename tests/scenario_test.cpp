// Scenario engine: script parsing/validation, popularity shifts on the
// workload, latency degradation overlays, arrival modulation, and runner
// integration — windowed metrics, counted failed reads, determinism, and
// the adaptivity headline (Agar recovers from a popularity shift within two
// reconfiguration periods; a fixed-c baseline stays on its worse plateau).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "api/api.hpp"
#include "client/runner.hpp"
#include "client/workload.hpp"
#include "scenario/engine.hpp"
#include "scenario/scenario.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"

namespace agar {
namespace {

using client::Workload;
using client::WorkloadSpec;
using scenario::PopularityShift;
using scenario::Scenario;

// ------------------------------------------------------------- parsing

TEST(ScenarioParse, CompactTextFormRoundTrips) {
  const Scenario s = scenario::parse_scenario_text(
      "1000 fail_region region=tokyo; 2500 popularity_rotate by=20; "
      "4000 restore_region region=tokyo");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.events[0].at_ms, 1000.0);
  EXPECT_EQ(s.events[0].event, "fail_region");
  EXPECT_EQ(s.events[0].params.get_string("region", ""), "tokyo");
  EXPECT_EQ(s.events[1].params.get_size("by", 0), 20u);
  s.validate();
  EXPECT_EQ(scenario::parse_scenario_text(s.to_text()).to_text(), s.to_text());
}

TEST(ScenarioParse, EmptyTextIsEmptyScenario) {
  EXPECT_TRUE(scenario::parse_scenario_text("").empty());
  EXPECT_TRUE(scenario::parse_scenario_text("  ").empty());
}

TEST(ScenarioParse, RejectsMalformedEventTimes) {
  EXPECT_THROW((void)scenario::parse_scenario_text("nan fail_region region=tokyo"),
               std::invalid_argument);
  EXPECT_THROW((void)scenario::parse_scenario_text("inf flash_crowd count=1"),
               std::invalid_argument);
  EXPECT_THROW((void)scenario::parse_scenario_text("10abc fail_region region=0"),
               std::invalid_argument);
  EXPECT_THROW((void)api::parse_spec_json(R"({"system": "backend", "scenario":
                   [{"at_ms": "nan", "event": "fail_region",
                     "region": "tokyo"}]})"),
               std::invalid_argument);
}

TEST(ScenarioParse, ValidationRejectsBadScripts) {
  EXPECT_THROW(scenario::parse_scenario_text("0 explode").validate(),
               std::invalid_argument);
  EXPECT_THROW(
      scenario::parse_scenario_text("0 fail_region region=atlantis")
          .validate(),
      std::invalid_argument);
  EXPECT_THROW(
      scenario::parse_scenario_text("0 fail_region chunks=2").validate(),
      std::invalid_argument);
  EXPECT_THROW(
      scenario::parse_scenario_text("0 arrival_sine amplitude=1.5")
          .validate(),
      std::invalid_argument);
  EXPECT_THROW(
      scenario::parse_scenario_text("0 slow_region region=tokyo factor=0")
          .validate(),
      std::invalid_argument);
}

TEST(ScenarioParse, SpecJsonArrayAndTextFormsAgree) {
  const auto from_json = api::parse_spec_json(R"({
    "system": "backend", "ops": 10, "runs": 1, "window_ms": 500,
    "scenario": [
      {"at_ms": 1000, "event": "fail_region", "region": "tokyo"},
      {"at_ms": 2000, "event": "flash_crowd", "count": 5}
    ]
  })");
  ASSERT_EQ(from_json.size(), 1u);
  const auto& spec = from_json[0];
  EXPECT_DOUBLE_EQ(spec.experiment.metric_window_ms, 500.0);
  ASSERT_EQ(spec.experiment.scenario.size(), 2u);
  EXPECT_EQ(spec.experiment.scenario.events[1].event, "flash_crowd");

  api::ExperimentSpec via_set;
  via_set.set("system", "backend");
  via_set.set("scenario",
              "1000 fail_region region=tokyo; 2000 flash_crowd count=5");
  EXPECT_EQ(via_set.experiment.scenario.to_text(),
            spec.experiment.scenario.to_text());

  // to_json round-trips the scenario through the array form.
  const auto reparsed = api::parse_spec_json(spec.to_json());
  ASSERT_EQ(reparsed.size(), 1u);
  EXPECT_EQ(reparsed[0].experiment.scenario.to_text(),
            spec.experiment.scenario.to_text());
  EXPECT_DOUBLE_EQ(reparsed[0].experiment.metric_window_ms, 500.0);
}

// ------------------------------------------------- popularity shifts

TEST(PopularityShifts, RotateMovesTheHotSet) {
  Workload w(WorkloadSpec::zipfian(2.0), 10, 42);
  EXPECT_EQ(w.object_at_rank(0), 0u);
  PopularityShift shift;
  shift.kind = PopularityShift::Kind::kRotate;
  shift.rotate_by = 5;
  w.apply(shift);
  EXPECT_EQ(w.object_at_rank(0), 5u);
  EXPECT_EQ(w.object_at_rank(5), 0u);
  // The hottest key drawn is now object5's.
  std::map<std::string, int> counts;
  for (int i = 0; i < 500; ++i) ++counts[w.next_key()];
  const auto hottest = std::max_element(
      counts.begin(), counts.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  EXPECT_EQ(hottest->first, "object5");
}

TEST(PopularityShifts, FlashCrowdPromotesTheColdTail) {
  Workload w(WorkloadSpec::zipfian(2.0), 10, 42);
  PopularityShift shift;
  shift.kind = PopularityShift::Kind::kFlashCrowd;
  shift.crowd_count = 2;
  w.apply(shift);  // default block: the coldest tail {8, 9}
  EXPECT_EQ(w.object_at_rank(0), 8u);
  EXPECT_EQ(w.object_at_rank(1), 9u);
  EXPECT_EQ(w.object_at_rank(2), 0u);  // everyone else shifted back in order
}

TEST(PopularityShifts, ReseedIsDeterministic) {
  Workload a(WorkloadSpec::zipfian(1.1), 50, 1);
  Workload b(WorkloadSpec::zipfian(1.1), 50, 2);  // different key streams
  PopularityShift shift;
  shift.kind = PopularityShift::Kind::kReseed;
  shift.seed = 99;
  a.apply(shift);
  b.apply(shift);
  bool moved = false;
  for (std::size_t r = 0; r < 50; ++r) {
    EXPECT_EQ(a.object_at_rank(r), b.object_at_rank(r));
    moved |= a.object_at_rank(r) != r;
  }
  EXPECT_TRUE(moved);
}

// ------------------------------------------- engine + network overlays

TEST(ScenarioEngineTest, AppliesNetworkEventsOnTheLoop) {
  const auto topology = sim::aws_six_regions();
  sim::LatencyModelParams params;
  params.jitter_fraction = 0.0;
  sim::Network network(sim::LatencyModel(&topology, params, 7));
  sim::EventLoop loop;
  network.bind_loop(&loop);

  const double nominal = network.model().expected_backend_fetch_ms(
      sim::region::kFrankfurt, sim::region::kTokyo, 1000);

  scenario::ScenarioEngine engine(
      scenario::parse_scenario_text(
          "100 fail_region region=dublin; "
          "200 slow_region region=tokyo factor=3; "
          "300 restore_region region=dublin"),
      &network, {});
  engine.schedule(loop);

  loop.run_until(150.0);
  EXPECT_TRUE(network.is_down(sim::region::kDublin));
  loop.run_until(250.0);
  EXPECT_DOUBLE_EQ(network.model().expected_backend_fetch_ms(
                       sim::region::kFrankfurt, sim::region::kTokyo, 1000),
                   3.0 * nominal);
  loop.run();
  EXPECT_FALSE(network.is_down(sim::region::kDublin));
  EXPECT_EQ(engine.fired(), 3u);
}

TEST(ScenarioEngineTest, PopularityEventWithoutHookFailsAtConstruction) {
  const auto topology = sim::aws_six_regions();
  sim::Network network(sim::LatencyModel(&topology, {}, 7));
  EXPECT_THROW(
      scenario::ScenarioEngine(
          scenario::parse_scenario_text("100 flash_crowd count=3"), &network,
          {}),
      std::invalid_argument);
}

TEST(ScenarioEngineTest, ArrivalModulationStepAndSine) {
  const auto topology = sim::aws_six_regions();
  sim::Network network(sim::LatencyModel(&topology, {}, 7));
  sim::EventLoop loop;
  network.bind_loop(&loop);
  scenario::ScenarioEngine engine(
      scenario::parse_scenario_text(
          "100 arrival_factor factor=2; "
          "200 arrival_sine period_s=1 amplitude=0.5"),
      &network, {});
  engine.schedule(loop);
  EXPECT_DOUBLE_EQ(engine.arrival_multiplier(0.0), 1.0);
  loop.run();
  // Step factor alone at the sine's zero crossing; peak a quarter period
  // after the sine started.
  EXPECT_DOUBLE_EQ(engine.arrival_multiplier(200.0), 2.0);
  EXPECT_NEAR(engine.arrival_multiplier(450.0), 3.0, 1e-9);
  EXPECT_NEAR(engine.arrival_multiplier(950.0), 1.0, 1e-9);
}

// ------------------------------------------------------ runner integration

client::ExperimentConfig small_config() {
  client::ExperimentConfig config;
  config.deployment.num_objects = 20;
  config.deployment.object_size_bytes = 9000;
  config.deployment.seed = 11;
  config.client_regions = {sim::region::kFrankfurt};
  config.ops_per_run = 200;
  config.runs = 1;
  config.arrival_rate_per_s = 50.0;
  config.reconfig_period_ms = 2000.0;
  config.metric_window_ms = 1000.0;
  return config;
}

client::ExperimentResult run_system(const client::ExperimentConfig& config,
                                    const std::vector<std::string>& pairs) {
  api::ExperimentSpec spec;
  spec.experiment = config;
  for (const auto& pair : pairs) spec.set_pair(pair);
  return api::run(spec).result;
}

TEST(ScenarioRunner, OutageProducesCountedFailedReadsNotCrashes) {
  auto config = small_config();
  // Two regions down simultaneously leaves only 8 of 12 chunks — every
  // read in that span must fail (counted), then service recovers.
  config.scenario = scenario::parse_scenario_text(
      "500 fail_region region=tokyo; 1000 fail_region region=sydney; "
      "2000 restore_region region=tokyo; 2000 restore_region region=sydney");
  const auto result = run_system(config, {"system=backend"});
  const auto& run = result.runs[0];
  EXPECT_EQ(run.ops, 200u);
  EXPECT_GT(run.failed_reads, 0u);
  EXPECT_LT(run.failed_reads, 200u);
  EXPECT_EQ(run.scenario_events_fired, 4u);
  // Windowed series: every completion landed in a window; failures
  // cluster in the outage windows, none after recovery.
  ASSERT_FALSE(run.windows.empty());
  std::uint64_t window_ops = 0, window_failed = 0;
  for (const auto& w : run.windows) {
    window_ops += w.ops;
    window_failed += w.failed_reads;
  }
  EXPECT_EQ(window_ops, run.ops);
  EXPECT_EQ(window_failed, run.failed_reads);
  EXPECT_EQ(run.windows.back().failed_reads, 0u);
}

TEST(ScenarioRunner, ScenarioRunsAreDeterministic) {
  auto config = small_config();
  config.scenario = scenario::parse_scenario_text(
      "400 flash_crowd count=5; 800 arrival_factor factor=2; "
      "1200 slow_region region=tokyo factor=2");
  const auto a = run_system(config, {"system=agar", "cache_bytes=64KB"});
  const auto b = run_system(config, {"system=agar", "cache_bytes=64KB"});
  ASSERT_EQ(a.runs.size(), b.runs.size());
  const auto& ra = a.runs[0];
  const auto& rb = b.runs[0];
  EXPECT_EQ(ra.ops, rb.ops);
  EXPECT_EQ(ra.failed_reads, rb.failed_reads);
  EXPECT_EQ(ra.wire_fetches, rb.wire_fetches);
  ASSERT_EQ(ra.windows.size(), rb.windows.size());
  for (std::size_t w = 0; w < ra.windows.size(); ++w) {
    EXPECT_EQ(ra.windows[w].ops, rb.windows[w].ops);
    EXPECT_DOUBLE_EQ(ra.windows[w].mean_ms, rb.windows[w].mean_ms);
  }
}

TEST(ScenarioRunner, ArrivalSurgeCompressesTheRun) {
  auto base = small_config();
  base.scenario = Scenario{};
  const auto steady = run_system(base, {"system=backend"});
  auto surged = small_config();
  surged.scenario =
      scenario::parse_scenario_text("500 arrival_factor factor=4");
  const auto surge = run_system(surged, {"system=backend"});
  // Same op budget arrives in less virtual time once the surge kicks in.
  EXPECT_LT(surge.runs[0].duration_ms, steady.runs[0].duration_ms);
}

// The headline acceptance check: under a popularity shift plus an outage,
// Agar's windowed mean latency spikes and then recovers within two
// reconfiguration periods, while the best fixed-c baseline stays on its
// (worse) backend-bound plateau.
TEST(ScenarioRunner, AgarRecoversFromPopularityShiftWithinTwoPeriods) {
  client::ExperimentConfig config;
  config.deployment.num_objects = 40;
  config.deployment.object_size_bytes = 9000;
  config.deployment.seed = 9;
  config.client_regions = {sim::region::kSydney};
  config.ops_per_run = 1600;
  config.runs = 1;
  config.arrival_rate_per_s = 20.0;
  config.reconfig_period_ms = 10'000.0;   // reconfigure every 10 s
  config.metric_window_ms = 10'000.0;     // windows aligned with periods
  // At t=30 s the popularity order rotates by half the universe (the hot
  // set changes completely) and the nearest backend region browns out.
  config.scenario = scenario::parse_scenario_text(
      "30000 popularity_rotate by=20; "
      "30000 slow_region region=tokyo factor=2; "
      "60000 slow_region region=tokyo factor=1");

  const auto agar =
      run_system(config, {"system=agar", "cache_bytes=120KB"});
  const auto fixed =
      run_system(config, {"system=lru", "chunks=5", "cache_bytes=120KB"});

  const auto& aw = agar.runs[0].windows;
  ASSERT_GE(aw.size(), 6u);
  const double pre_shift = aw[2].mean_ms;    // 20-30 s: steady state
  const double at_shift = aw[3].mean_ms;     // 30-40 s: spike
  const double recovered = aw[5].mean_ms;    // 50-60 s: two periods later
  // The shift hurts, and two reconfigurations later Agar is back within
  // 25% of its pre-shift mean.
  EXPECT_GT(at_shift, pre_shift * 1.1);
  EXPECT_LT(recovered, pre_shift * 1.25);
  // The fixed-c baseline never reaches Agar's recovered level: its c is
  // pinned, so every read keeps paying the backend-bound plateau.
  const auto& fw = fixed.runs[0].windows;
  ASSERT_GE(fw.size(), 6u);
  EXPECT_GT(fw[5].mean_ms, recovered * 1.1);
}

}  // namespace
}  // namespace agar
