// Request monitor: EWMA popularity over periods plus in-flight blending.
#include "core/request_monitor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace agar::core {
namespace {

TEST(RequestMonitor, ChargesProcessingOverhead) {
  RequestMonitorParams p;
  p.processing_ms = 0.5;  // the paper's measured overhead (§VI)
  RequestMonitor m(p);
  EXPECT_DOUBLE_EQ(m.record_access("a"), 0.5);
}

TEST(RequestMonitor, CountsAccesses) {
  RequestMonitor m;
  m.record_access("a");
  m.record_access("a");
  m.record_access("b");
  EXPECT_EQ(m.accesses(), 3u);
  EXPECT_EQ(m.tracked_keys(), 2u);
}

TEST(RequestMonitor, PopularityBlendsCurrentPeriod) {
  RequestMonitor m;
  for (int i = 0; i < 100; ++i) m.record_access("key1");
  // Before the period rolls, popularity reflects alpha * current count
  // (paper example: 0.8 * 100 + 0.2 * 0 = 80).
  EXPECT_DOUBLE_EQ(m.popularity("key1"), 80.0);
}

TEST(RequestMonitor, RollPeriodLocksInEwma) {
  RequestMonitor m;
  for (int i = 0; i < 100; ++i) m.record_access("key1");
  m.roll_period();
  EXPECT_DOUBLE_EQ(m.popularity("key1"), 80.0);
  for (int i = 0; i < 50; ++i) m.record_access("key1");
  m.roll_period();
  EXPECT_DOUBLE_EQ(m.popularity("key1"), 56.0);
}

TEST(RequestMonitor, UnknownKeyHasZeroPopularity) {
  RequestMonitor m;
  EXPECT_DOUBLE_EQ(m.popularity("ghost"), 0.0);
}

TEST(RequestMonitor, SnapshotOrdersByKeyContent) {
  RequestMonitor m;
  m.record_access("hot");
  m.record_access("hot");
  m.record_access("cold");
  auto snap = m.snapshot();
  std::sort(snap.begin(), snap.end());
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "cold");
  EXPECT_DOUBLE_EQ(snap[0].second, 0.8);
  EXPECT_DOUBLE_EQ(snap[1].second, 1.6);
}

TEST(RequestMonitor, PopularityDecaysAcrossIdlePeriods) {
  RequestMonitor m;
  for (int i = 0; i < 10; ++i) m.record_access("k");
  m.roll_period();
  const double p1 = m.popularity("k");
  m.roll_period();
  const double p2 = m.popularity("k");
  EXPECT_LT(p2, p1);
}

TEST(RequestMonitor, CustomAlpha) {
  RequestMonitorParams p;
  p.ewma_alpha = 0.5;
  RequestMonitor m(p);
  for (int i = 0; i < 10; ++i) m.record_access("k");
  m.roll_period();
  EXPECT_DOUBLE_EQ(m.popularity("k"), 5.0);
}

}  // namespace
}  // namespace agar::core
