// Request monitor: EWMA popularity over periods plus in-flight blending.
#include "core/request_monitor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace agar::core {
namespace {

TEST(RequestMonitor, ChargesProcessingOverhead) {
  RequestMonitorParams p;
  p.processing_ms = 0.5;  // the paper's measured overhead (§VI)
  RequestMonitor m(p);
  EXPECT_DOUBLE_EQ(m.record_access("a"), 0.5);
}

TEST(RequestMonitor, CountsAccesses) {
  RequestMonitor m;
  m.record_access("a");
  m.record_access("a");
  m.record_access("b");
  EXPECT_EQ(m.accesses(), 3u);
  EXPECT_EQ(m.tracked_keys(), 2u);
}

TEST(RequestMonitor, PopularityBlendsCurrentPeriod) {
  RequestMonitor m;
  for (int i = 0; i < 100; ++i) m.record_access("key1");
  // Before the period rolls, popularity reflects alpha * current count
  // (paper example: 0.8 * 100 + 0.2 * 0 = 80).
  EXPECT_DOUBLE_EQ(m.popularity("key1"), 80.0);
}

TEST(RequestMonitor, RollPeriodLocksInEwma) {
  RequestMonitor m;
  for (int i = 0; i < 100; ++i) m.record_access("key1");
  m.roll_period();
  EXPECT_DOUBLE_EQ(m.popularity("key1"), 80.0);
  for (int i = 0; i < 50; ++i) m.record_access("key1");
  m.roll_period();
  EXPECT_DOUBLE_EQ(m.popularity("key1"), 56.0);
}

TEST(RequestMonitor, UnknownKeyHasZeroPopularity) {
  RequestMonitor m;
  EXPECT_DOUBLE_EQ(m.popularity("ghost"), 0.0);
}

TEST(RequestMonitor, SnapshotIsSortedByKey) {
  // Sorted order is a contract (planner-input determinism), not a
  // courtesy: no caller-side sort here.
  RequestMonitor m;
  m.record_access("hot");
  m.record_access("hot");
  m.record_access("cold");
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "cold");
  EXPECT_DOUBLE_EQ(snap[0].second, 0.8);
  EXPECT_EQ(snap[1].first, "hot");
  EXPECT_DOUBLE_EQ(snap[1].second, 1.6);
}

TEST(RequestMonitor, SnapshotStaysSortedUnderManyKeys) {
  RequestMonitor m;
  for (int i = 0; i < 200; ++i) {
    m.record_access("object" + std::to_string((i * 131) % 97));
  }
  const auto snap = m.snapshot();
  EXPECT_TRUE(std::is_sorted(
      snap.begin(), snap.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(RequestMonitor, CountMinEstimatorRunsBehindTheMonitor) {
  RequestMonitorParams p;
  p.estimator = "count-min";
  p.estimator_params.set("width", "256");
  p.estimator_params.set("depth", "4");
  RequestMonitor m(p);
  EXPECT_EQ(m.estimator().name(), "count-min");
  for (int i = 0; i < 100; ++i) m.record_access("hot");
  m.record_access("cold");
  EXPECT_GT(m.popularity("hot"), m.popularity("cold"));
  m.roll_period();
  EXPECT_GT(m.popularity("hot"), 0.0);
  const auto snap = m.snapshot();
  EXPECT_TRUE(std::is_sorted(
      snap.begin(), snap.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(RequestMonitor, UnknownEstimatorThrows) {
  RequestMonitorParams p;
  p.estimator = "oracle";
  EXPECT_THROW(RequestMonitor{p}, std::invalid_argument);
}

TEST(RequestMonitor, PopularityDecaysAcrossIdlePeriods) {
  RequestMonitor m;
  for (int i = 0; i < 10; ++i) m.record_access("k");
  m.roll_period();
  const double p1 = m.popularity("k");
  m.roll_period();
  const double p2 = m.popularity("k");
  EXPECT_LT(p2, p1);
}

TEST(RequestMonitor, CustomAlpha) {
  RequestMonitorParams p;
  p.ewma_alpha = 0.5;
  RequestMonitor m(p);
  for (int i = 0; i < 10; ++i) m.record_access("k");
  m.roll_period();
  EXPECT_DOUBLE_EQ(m.popularity("k"), 5.0);
}

}  // namespace
}  // namespace agar::core
