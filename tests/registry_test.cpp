// The api registries: registration/lookup, unknown-name diagnostics,
// duplicate rejection, label derivation, engine->fixed-chunks fallback,
// and the ParamMap typed accessors the whole layer is built on.
#include "api/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "api/experiment_spec.hpp"
#include "cache/cache.hpp"
#include "client/runner.hpp"

namespace agar::api {
namespace {

// ------------------------------------------------------------- ParamMap

TEST(ParamMap, TypedGettersParseAndFallBack) {
  ParamMap params;
  params.set("cache_bytes", "10MB");
  params.set("chunks", "5");
  params.set("rate", "2.5");
  params.set("verify", "true");
  params.set("weights", "1,3,9");
  EXPECT_EQ(params.get_size("cache_bytes", 0), 10_MB);
  EXPECT_EQ(params.get_size("chunks", 0), 5u);
  EXPECT_DOUBLE_EQ(params.get_double("rate", 0.0), 2.5);
  EXPECT_TRUE(params.get_bool("verify", false));
  EXPECT_EQ(params.get_size_list("weights", {}),
            (std::vector<std::size_t>{1, 3, 9}));
  // Unset keys fall back.
  EXPECT_EQ(params.get_size("missing", 42), 42u);
  EXPECT_EQ(params.get_string("missing", "x"), "x");
}

TEST(ParamMap, SizeSuffixesAndCase) {
  EXPECT_EQ(parse_size("4096"), 4096u);
  EXPECT_EQ(parse_size("512KB"), 512_KB);
  EXPECT_EQ(parse_size("10mb"), 10_MB);
  EXPECT_EQ(parse_size("1G"), 1024 * 1_MB);
  EXPECT_THROW((void)parse_size("ten"), std::invalid_argument);
  EXPECT_THROW((void)parse_size("10XB"), std::invalid_argument);
  // stoull would happily wrap negatives to huge values; sizes must not.
  EXPECT_THROW((void)parse_size("-1"), std::invalid_argument);
  EXPECT_THROW((void)parse_size("-10MB"), std::invalid_argument);
  EXPECT_THROW((void)parse_size("+5"), std::invalid_argument);
}

TEST(ParamMap, MalformedValueNamesTheKey) {
  ParamMap params;
  params.set("chunks", "banana");
  try {
    (void)params.get_size("chunks", 0);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("chunks"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos);
  }
}

TEST(ParamMap, SplitPairRejectsMalformedInput) {
  EXPECT_THROW((void)split_pair("no-equals"), std::invalid_argument);
  EXPECT_THROW((void)split_pair("=value"), std::invalid_argument);
  const auto [k, v] = split_pair("a=b=c");
  EXPECT_EQ(k, "a");
  EXPECT_EQ(v, "b=c");
}

TEST(ParamMap, ValidateRejectsUnknownKeysWithAcceptedList) {
  const ParamSchema schema{{{"chunks", ParamType::kSize, "9", ""}}};
  ParamMap params;
  params.set("chunkz", "5");
  try {
    params.validate(schema, "system 'lru'");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("chunkz"), std::string::npos);
    EXPECT_NE(what.find("chunks"), std::string::npos);  // accepted list
    EXPECT_NE(what.find("system 'lru'"), std::string::npos);
  }
}

TEST(ParamMap, ValidateTypeChecksDeclaredParams) {
  const ParamSchema schema{{{"chunks", ParamType::kSize, "9", ""}}};
  ParamMap params;
  params.set("chunks", "not-a-number");
  EXPECT_THROW(params.validate(schema, "test"), std::invalid_argument);
}

// ------------------------------------------------------------ registries

TEST(Registry, BuiltinEnginesAreRegistered) {
  const auto names = EngineRegistry::instance().names();
  for (const char* expected : {"arc", "lfu", "lru", "tinylfu"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  // Sorted for stable --list output.
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, BuiltinStrategiesAreRegistered) {
  const auto names = StrategyRegistry::instance().names();
  for (const char* expected :
       {"agar", "backend", "fixed-chunks", "lfu", "lfu-eviction"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(Registry, UnknownNameErrorCarriesKnownNames) {
  try {
    (void)EngineRegistry::instance().at("no-such-engine");
    FAIL() << "expected throw";
  } catch (const UnknownNameError& e) {
    EXPECT_NE(std::string(e.what()).find("no-such-engine"),
              std::string::npos);
    EXPECT_FALSE(e.known_names().empty());
  }
}

TEST(Registry, DuplicateRegistrationThrows) {
  EngineRegistry::Entry entry;
  entry.name = "lru";  // already registered by the real LRU engine
  entry.factory = [](const EngineContext&, const ParamMap&) {
    return std::unique_ptr<cache::CacheEngine>{};
  };
  EXPECT_THROW(EngineRegistry::instance().add(std::move(entry)),
               std::invalid_argument);
}

TEST(Registry, EntriesWithoutFactoryAreRejected) {
  EngineRegistry::Entry entry;
  entry.name = "broken";
  EXPECT_THROW(EngineRegistry::instance().add(std::move(entry)),
               std::invalid_argument);
}

TEST(Registry, EngineFactoryHonoursCapacity) {
  const auto engine = EngineRegistry::instance().create(
      "lru", EngineContext{4096}, ParamMap{});
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->capacity_bytes(), 4096u);
}

TEST(Registry, LabelsDeriveFromNameAndParams) {
  ParamMap chunks5;
  chunks5.set("chunks", "5");
  EXPECT_EQ(StrategyRegistry::instance().label("lfu", chunks5), "LFU-5");
  EXPECT_EQ(StrategyRegistry::instance().label("backend", ParamMap{}),
            "Backend");
  EXPECT_EQ(StrategyRegistry::instance().label("agar", ParamMap{}), "Agar");
  // Fixed-chunks labels come from the engine's display stem.
  ParamMap arc;
  arc.set("engine", "arc");
  arc.set("chunks", "7");
  EXPECT_EQ(StrategyRegistry::instance().label("fixed-chunks", arc), "ARC-7");
}

// -------------------------------------------- engine fallback resolution

TEST(Resolve, StrategiesPassThrough) {
  const auto [name, params] = resolve_system("agar", ParamMap{});
  EXPECT_EQ(name, "agar");
  EXPECT_TRUE(params.empty());
}

TEST(Resolve, EngineNamesBecomeFixedChunksSystems) {
  ParamMap params;
  params.set("chunks", "3");
  const auto [name, effective] = resolve_system("arc", params);
  EXPECT_EQ(name, "fixed-chunks");
  EXPECT_EQ(effective.get_string("engine", ""), "arc");
  EXPECT_EQ(effective.get_size("chunks", 0), 3u);
}

TEST(Resolve, StrategyNameShadowsEngineName) {
  // "lfu" is both a strategy (periodic baseline) and an engine; the
  // strategy must win, as it did under the old enum.
  const auto [name, effective] = resolve_system("lfu", ParamMap{});
  EXPECT_EQ(name, "lfu");
  EXPECT_FALSE(effective.has("engine"));
}

TEST(Resolve, UnknownSystemListsEverythingRunnable) {
  try {
    (void)resolve_system("nope", ParamMap{});
    FAIL() << "expected throw";
  } catch (const UnknownNameError& e) {
    const auto& known = e.known_names();
    // Strategies and engines both runnable.
    EXPECT_NE(std::find(known.begin(), known.end(), "agar"), known.end());
    EXPECT_NE(std::find(known.begin(), known.end(), "arc"), known.end());
  }
}

TEST(Resolve, RunnableSystemsAreSortedAndDeduplicated) {
  const auto names = runnable_systems();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  // "lfu" appears once even though both registries know it.
  EXPECT_EQ(std::count(names.begin(), names.end(), std::string("lfu")), 1);
}

}  // namespace
}  // namespace agar::api
