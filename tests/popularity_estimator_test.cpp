// Popularity estimators: the exact-ewma entry reproduces the paper's
// monitor math, count-min never under-estimates and stays within its
// memory bound, and both honor the sorted-snapshot determinism contract.
#include "core/popularity_estimator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "api/registry.hpp"
#include "common/rng.hpp"

namespace agar::core {
namespace {

std::unique_ptr<PopularityEstimator> make_estimator(
    const std::string& name, double alpha = 0.8,
    const api::ParamMap& params = {}) {
  api::EstimatorContext ctx;
  ctx.ewma_alpha = alpha;
  return api::EstimatorRegistry::instance().create(name, ctx, params);
}

class EstimatorContract : public ::testing::TestWithParam<std::string> {};

TEST_P(EstimatorContract, SnapshotIsSortedByKey) {
  auto est = make_estimator(GetParam());
  // Insertion order deliberately unsorted.
  for (const char* key : {"zebra", "apple", "mango", "kiwi", "apple"}) {
    est->record(key);
  }
  const auto snap = est->snapshot();
  ASSERT_GE(snap.size(), 4u);
  EXPECT_TRUE(std::is_sorted(
      snap.begin(), snap.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST_P(EstimatorContract, ColdStartStillRanksKeys) {
  auto est = make_estimator(GetParam());
  for (int i = 0; i < 100; ++i) est->record("hot");
  for (int i = 0; i < 3; ++i) est->record("cold");
  // Before the first roll, blending must already rank hot over cold
  // (paper: first iteration uses alpha * freq).
  EXPECT_GT(est->popularity("hot"), est->popularity("cold"));
  EXPECT_GT(est->popularity("cold"), 0.0);
}

TEST_P(EstimatorContract, IdlePeriodsDecayPopularity) {
  auto est = make_estimator(GetParam());
  for (int i = 0; i < 50; ++i) est->record("k");
  est->roll_period();
  const double p1 = est->popularity("k");
  est->roll_period();
  const double p2 = est->popularity("k");
  EXPECT_LT(p2, p1);
  EXPECT_GT(p1, 0.0);
}

TEST_P(EstimatorContract, DecayedKeysAreDropped) {
  auto est = make_estimator(GetParam());
  est->record("once");
  for (int i = 0; i < 40; ++i) est->roll_period();
  EXPECT_EQ(est->tracked_keys(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Registered, EstimatorContract,
    ::testing::ValuesIn(api::EstimatorRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ExactEwmaEstimator, ReproducesThePapersMonitorMath) {
  auto est = make_estimator("exact-ewma");
  for (int i = 0; i < 100; ++i) est->record("key1");
  EXPECT_DOUBLE_EQ(est->popularity("key1"), 80.0);  // 0.8 * 100
  est->roll_period();
  EXPECT_DOUBLE_EQ(est->popularity("key1"), 80.0);
  for (int i = 0; i < 50; ++i) est->record("key1");
  est->roll_period();
  EXPECT_DOUBLE_EQ(est->popularity("key1"), 56.0);  // 0.8*50 + 0.2*80
  EXPECT_EQ(est->name(), "exact-ewma");
}

TEST(CountMinEstimator, NeverUnderEstimatesTheExactCounts) {
  auto exact = make_estimator("exact-ewma");
  auto sketch = make_estimator("count-min");
  Rng rng(7);
  for (int period = 0; period < 5; ++period) {
    for (int i = 0; i < 2000; ++i) {
      const std::string key = "object" + std::to_string(rng.next_below(50));
      exact->record(key);
      sketch->record(key);
    }
    // The sketch can only over-count (collisions), never under-count, and
    // the EWMA preserves that ordering period over period.
    for (int k = 0; k < 50; ++k) {
      const std::string key = "object" + std::to_string(k);
      EXPECT_GE(sketch->popularity(key) + 1e-9, exact->popularity(key))
          << key << " period " << period;
    }
    exact->roll_period();
    sketch->roll_period();
  }
}

TEST(CountMinEstimator, HonorsTheCandidateKeyBound) {
  api::ParamMap params;
  params.set("max_keys", "16");
  auto est = make_estimator("count-min", 0.8, params);
  for (int i = 0; i < 500; ++i) est->record("key" + std::to_string(i));
  EXPECT_LE(est->tracked_keys(), 16u);
  EXPECT_LE(est->snapshot().size(), 16u);
}

TEST(CountMinEstimator, HotNewcomerDisplacesAWeakCandidate) {
  api::ParamMap params;
  params.set("max_keys", "4");
  auto est = make_estimator("count-min", 0.8, params);
  for (int k = 0; k < 4; ++k) est->record("filler" + std::to_string(k));
  // A key far hotter than the one-hit fillers must enter the candidate set
  // even though it is full.
  for (int i = 0; i < 100; ++i) est->record("surge");
  const auto snap = est->snapshot();
  const bool has_surge =
      std::any_of(snap.begin(), snap.end(),
                  [](const auto& kv) { return kv.first == "surge"; });
  EXPECT_TRUE(has_surge);
  EXPECT_LE(snap.size(), 4u);
}

TEST(CountMinEstimator, SketchParamsAreApplied) {
  api::ParamMap params;
  params.set("width", "32");
  params.set("depth", "2");
  auto est = make_estimator("count-min", 0.8, params);
  for (int i = 0; i < 10; ++i) est->record("k");
  EXPECT_GT(est->popularity("k"), 0.0);
  EXPECT_EQ(est->name(), "count-min");
}

TEST(EstimatorRegistry, UnknownNameThrowsWithKnownNames) {
  try {
    (void)make_estimator("hyperloglog");
    FAIL() << "expected UnknownNameError";
  } catch (const api::UnknownNameError& e) {
    const auto& known = e.known_names();
    EXPECT_NE(std::find(known.begin(), known.end(), "exact-ewma"),
              known.end());
    EXPECT_NE(std::find(known.begin(), known.end(), "count-min"),
              known.end());
  }
}

}  // namespace
}  // namespace agar::core
