// Differential property tests for the GF(256) bulk-kernel backends: every
// runtime-supported kernel set (portable64, SSSE3, AVX2) must agree with
// the scalar reference byte-for-byte over random coefficients, awkward
// lengths (0, 1, non-multiples of 16/32) and misaligned buffers.
#include "gf/gf256.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace agar::gf {
namespace {

/// Pin a backend for one scope; restores the automatic choice on exit.
class BackendGuard {
 public:
  explicit BackendGuard(Backend b) { EXPECT_TRUE(set_backend(b)); }
  ~BackendGuard() { reset_backend(); }
};

// Lengths straddling every kernel's block size (8, 16, 32, 64) plus a
// chunk-scale one.
const std::vector<std::size_t> kLengths = {
    0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 257, 4096,
    114 * 1024 + 3};

std::vector<std::uint8_t> random_buf(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  rng.fill_bytes(out.data(), out.size());
  return out;
}

TEST(GfBackends, ScalarAlwaysSupported) {
  EXPECT_TRUE(backend_supported(Backend::kScalar));
  EXPECT_TRUE(backend_supported(Backend::kPortable64));
  const auto all = supported_backends();
  EXPECT_GE(all.size(), 2u);
}

TEST(GfBackends, SetAndResetBackend) {
  const Backend original = active_backend();
  ASSERT_TRUE(set_backend(Backend::kScalar));
  EXPECT_EQ(active_backend(), Backend::kScalar);
  reset_backend();
  EXPECT_EQ(active_backend(), original);
}

TEST(GfBackends, BackendNamesAreDistinct) {
  EXPECT_STREQ(backend_name(Backend::kScalar), "scalar");
  EXPECT_STREQ(backend_name(Backend::kPortable64), "portable64");
  EXPECT_STREQ(backend_name(Backend::kSsse3), "ssse3");
  EXPECT_STREQ(backend_name(Backend::kAvx2), "avx2");
}

TEST(GfBackends, MulSliceMatchesScalarReference) {
  Rng rng(1001);
  for (const Backend b : supported_backends()) {
    BackendGuard guard(b);
    for (const std::size_t n : kLengths) {
      const auto src = random_buf(rng, n);
      const std::uint8_t c = static_cast<std::uint8_t>(rng.next_below(256));
      std::vector<std::uint8_t> dst(n, 0xEE);
      mul_slice(c, src, dst);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(dst[i], mul(c, src[i]))
            << backend_name(b) << " c=" << int(c) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(GfBackends, MulAddSliceMatchesScalarReference) {
  Rng rng(1002);
  for (const Backend b : supported_backends()) {
    BackendGuard guard(b);
    for (const std::size_t n : kLengths) {
      // Sweep the special coefficients plus random ones.
      for (const int c0 : {0, 1, 2, 0x1D, -1}) {
        const std::uint8_t c =
            c0 < 0 ? static_cast<std::uint8_t>(rng.next_below(256))
                   : static_cast<std::uint8_t>(c0);
        const auto src = random_buf(rng, n);
        auto dst = random_buf(rng, n);
        const auto before = dst;
        mul_add_slice(c, src, dst);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(dst[i], static_cast<std::uint8_t>(before[i] ^
                                                      mul(c, src[i])))
              << backend_name(b) << " c=" << int(c) << " n=" << n
              << " i=" << i;
        }
      }
    }
  }
}

TEST(GfBackends, XorSliceMatchesScalarReference) {
  Rng rng(1003);
  for (const Backend b : supported_backends()) {
    BackendGuard guard(b);
    for (const std::size_t n : kLengths) {
      const auto src = random_buf(rng, n);
      auto dst = random_buf(rng, n);
      const auto before = dst;
      xor_slice(src, dst);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(dst[i], static_cast<std::uint8_t>(before[i] ^ src[i]));
      }
    }
  }
}

TEST(GfBackends, KernelsHandleMisalignedBuffers) {
  Rng rng(1004);
  for (const Backend b : supported_backends()) {
    BackendGuard guard(b);
    for (std::size_t offset = 0; offset < 4; ++offset) {
      const std::size_t n = 1000;
      const auto src_store = random_buf(rng, n + 8);
      auto dst_store = random_buf(rng, n + 8);
      const auto dst_before = dst_store;
      const std::uint8_t c = 0xA7;
      // Views deliberately offset from the allocation start.
      std::span<const std::uint8_t> src(src_store.data() + offset, n);
      std::span<std::uint8_t> dst(dst_store.data() + offset, n);
      mul_add_slice(c, src, dst);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(dst_store[offset + i],
                  static_cast<std::uint8_t>(dst_before[offset + i] ^
                                            mul(c, src_store[offset + i])))
            << backend_name(b) << " offset=" << offset << " i=" << i;
      }
      // Bytes outside the span must be untouched.
      for (std::size_t i = 0; i < offset; ++i) {
        ASSERT_EQ(dst_store[i], dst_before[i]);
      }
      for (std::size_t i = offset + n; i < dst_store.size(); ++i) {
        ASSERT_EQ(dst_store[i], dst_before[i]);
      }
    }
  }
}

TEST(GfBackends, MulAddMultiMatchesPerSourceReference) {
  Rng rng(1005);
  for (const Backend b : supported_backends()) {
    BackendGuard guard(b);
    for (const std::size_t nsrc : {std::size_t{1}, std::size_t{2},
                                   std::size_t{3}, std::size_t{9}}) {
      for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                  std::size_t{33}, std::size_t{4096 + 5}}) {
        std::vector<std::vector<std::uint8_t>> srcs;
        std::vector<std::uint8_t> coeffs;
        std::vector<std::span<const std::uint8_t>> views;
        for (std::size_t j = 0; j < nsrc; ++j) {
          srcs.push_back(random_buf(rng, n));
          // Include zero and one coefficients.
          coeffs.push_back(j == 0 ? 0
                                  : j == 1 ? 1
                                           : static_cast<std::uint8_t>(
                                                 rng.next_below(256)));
        }
        for (const auto& s : srcs) views.emplace_back(s);
        auto dst = random_buf(rng, n);
        std::vector<std::uint8_t> expected = dst;
        for (std::size_t j = 0; j < nsrc; ++j) {
          for (std::size_t i = 0; i < n; ++i) {
            expected[i] ^= mul(coeffs[j], srcs[j][i]);
          }
        }
        mul_add_multi(coeffs, views, dst);
        ASSERT_EQ(dst, expected) << backend_name(b) << " nsrc=" << nsrc
                                 << " n=" << n;
      }
    }
  }
}

TEST(GfBackends, MulAddMultiValidatesShapes) {
  std::vector<std::uint8_t> a(4), dst(4);
  std::vector<std::span<const std::uint8_t>> views{std::span<const std::uint8_t>(a)};
  const std::vector<std::uint8_t> two_coeffs{1, 2};
  EXPECT_THROW(mul_add_multi(two_coeffs, views, dst), std::invalid_argument);
  std::vector<std::uint8_t> short_src(3);
  views[0] = std::span<const std::uint8_t>(short_src);
  const std::vector<std::uint8_t> one_coeff{1};
  EXPECT_THROW(mul_add_multi(one_coeff, views, dst), std::invalid_argument);
}

TEST(GfBackends, MulAddMultiAllZeroCoefficientsIsNoop) {
  std::vector<std::uint8_t> src(64, 0xAB), dst(64, 0xCD);
  const auto before = dst;
  const std::vector<std::uint8_t> coeffs{0};
  std::vector<std::span<const std::uint8_t>> views{
      std::span<const std::uint8_t>(src)};
  mul_add_multi(coeffs, views, dst);
  EXPECT_EQ(dst, before);
}

// exp/pow now fold exponents instead of dividing; pin the identities.
TEST(GfExpFold, ExpMatchesNaiveModulo) {
  for (unsigned n = 0; n < 3000; ++n) {
    EXPECT_EQ(exp(n), exp(n % 255u)) << n;
  }
  // Large exponents, including ones whose byte-fold takes several rounds.
  for (const unsigned n : {100000u, 16777215u, 4294967295u, 65025u}) {
    EXPECT_EQ(exp(n), exp(n % 255u)) << n;
  }
}

TEST(GfExpFold, PowMatchesSquareAndMultiply) {
  Rng rng(1006);
  for (int t = 0; t < 500; ++t) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const unsigned n = static_cast<unsigned>(rng.next_below(1u << 20));
    std::uint8_t expected = 1;
    std::uint8_t base = a;
    unsigned e = n;
    bool zero = (a == 0 && n > 0);
    while (e != 0 && !zero) {
      if (e & 1) expected = mul(expected, base);
      base = mul(base, base);
      e >>= 1;
    }
    EXPECT_EQ(pow(a, n), zero ? 0 : expected) << int(a) << "^" << n;
  }
}

}  // namespace
}  // namespace agar::gf
