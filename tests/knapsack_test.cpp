// Knapsack solvers: the exact DP (paper Figs. 4-5) against brute force,
// greedy's known failure modes, and structural invariants.
#include "core/knapsack.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace agar::core {
namespace {

CachingOption opt(const ObjectKey& key, std::size_t weight, double value) {
  CachingOption o;
  o.key = key;
  o.weight = weight;
  o.weight_units = weight;
  o.value = value;
  for (std::size_t i = 0; i < weight; ++i) {
    o.chunks.push_back(static_cast<ChunkIndex>(i));
  }
  return o;
}

TEST(Knapsack, EmptyInput) {
  const auto r = solve_dp({}, 10);
  EXPECT_TRUE(r.chosen.empty());
  EXPECT_DOUBLE_EQ(r.total_value, 0.0);
}

TEST(Knapsack, ZeroCapacityChoosesNothing) {
  const auto r = solve_dp({{opt("a", 1, 5.0)}}, 0);
  EXPECT_TRUE(r.chosen.empty());
}

TEST(Knapsack, SingleOptionFits) {
  const auto r = solve_dp({{opt("a", 3, 7.0)}}, 5);
  ASSERT_EQ(r.chosen.size(), 1u);
  EXPECT_EQ(r.chosen[0].key, "a");
  EXPECT_DOUBLE_EQ(r.total_value, 7.0);
  EXPECT_EQ(r.total_weight_units, 3u);
}

TEST(Knapsack, SingleOptionTooHeavy) {
  const auto r = solve_dp({{opt("a", 6, 7.0)}}, 5);
  EXPECT_TRUE(r.chosen.empty());
}

TEST(Knapsack, AtMostOneOptionPerKey) {
  const std::vector<std::vector<CachingOption>> groups = {
      {opt("a", 1, 10.0), opt("a", 2, 15.0), opt("a", 3, 18.0)},
      {opt("b", 1, 9.0), opt("b", 2, 14.0)},
  };
  const auto r = solve_dp(groups, 10);
  std::set<ObjectKey> keys;
  for (const auto& o : r.chosen) {
    EXPECT_TRUE(keys.insert(o.key).second) << "duplicate key " << o.key;
  }
}

TEST(Knapsack, PrefersHigherValueCombination) {
  // Capacity 3: best is a@1 (10) + b@2 (14) = 24, not a@3 (18).
  const std::vector<std::vector<CachingOption>> groups = {
      {opt("a", 1, 10.0), opt("a", 3, 18.0)},
      {opt("b", 2, 14.0)},
  };
  const auto r = solve_dp(groups, 3);
  EXPECT_DOUBLE_EQ(r.total_value, 24.0);
  EXPECT_EQ(r.chosen.size(), 2u);
}

TEST(Knapsack, RelaxationShrinkAnOption) {
  // The RELAX move of Fig. 5: replacing a heavy option for a key with a
  // lighter one for the same key frees room. Capacity 4:
  //   a@4 alone = 20; a@2 (15) + b@2 (12) = 27.
  const std::vector<std::vector<CachingOption>> groups = {
      {opt("a", 2, 15.0), opt("a", 4, 20.0)},
      {opt("b", 2, 12.0)},
  };
  const auto r = solve_dp(groups, 4);
  EXPECT_DOUBLE_EQ(r.total_value, 27.0);
}

TEST(Knapsack, IgnoresZeroValueOptions) {
  const std::vector<std::vector<CachingOption>> groups = {
      {opt("a", 1, 0.0)},
      {opt("b", 1, -3.0)},
  };
  const auto r = solve_dp(groups, 5);
  EXPECT_TRUE(r.chosen.empty());
}

TEST(Knapsack, ExactCapacityFill) {
  const std::vector<std::vector<CachingOption>> groups = {
      {opt("a", 5, 50.0)},
      {opt("b", 5, 49.0)},
  };
  const auto r = solve_dp(groups, 10);
  EXPECT_EQ(r.total_weight_units, 10u);
  EXPECT_DOUBLE_EQ(r.total_value, 99.0);
}

TEST(Knapsack, GreedyFailsOnClassicAdversarialInstance) {
  // Greedy by density: takes a@1 (density 10), leaving no room for b@10
  // (density 9.9, value 99). DP takes b.
  const std::vector<std::vector<CachingOption>> groups = {
      {opt("a", 1, 10.0)},
      {opt("b", 10, 99.0)},
  };
  const auto greedy = solve_greedy(groups, 10);
  const auto dp = solve_dp(groups, 10);
  EXPECT_DOUBLE_EQ(greedy.total_value, 10.0);
  EXPECT_DOUBLE_EQ(dp.total_value, 99.0);
}

TEST(Knapsack, GreedyNeverBeatsDp) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::vector<CachingOption>> groups;
    const std::size_t keys = 1 + rng.next_below(6);
    for (std::size_t key = 0; key < keys; ++key) {
      std::vector<CachingOption> group;
      const std::size_t options = 1 + rng.next_below(4);
      for (std::size_t i = 0; i < options; ++i) {
        group.push_back(opt("k" + std::to_string(key),
                            1 + rng.next_below(8),
                            static_cast<double>(rng.next_below(100))));
      }
      groups.push_back(std::move(group));
    }
    const std::size_t cap = rng.next_below(20);
    EXPECT_LE(solve_greedy(groups, cap).total_value,
              solve_dp(groups, cap).total_value + 1e-9);
  }
}

// The decisive correctness check: the DP must match exhaustive search on
// randomized small instances (different shapes via parameterization).
class DpVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(DpVsBruteForce, OptimalOnRandomInstances) {
  Rng rng(77 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 120; ++trial) {
    std::vector<std::vector<CachingOption>> groups;
    const std::size_t keys = 1 + rng.next_below(5);
    for (std::size_t key = 0; key < keys; ++key) {
      std::vector<CachingOption> group;
      const std::size_t options = 1 + rng.next_below(5);
      for (std::size_t i = 0; i < options; ++i) {
        group.push_back(opt("k" + std::to_string(key),
                            1 + rng.next_below(9),
                            1.0 + static_cast<double>(rng.next_below(1000))));
      }
      groups.push_back(std::move(group));
    }
    const std::size_t cap = 1 + rng.next_below(25);
    const auto dp = solve_dp(groups, cap);
    const auto brute = solve_brute_force(groups, cap);
    EXPECT_DOUBLE_EQ(dp.total_value, brute.total_value)
        << "trial " << trial << " cap " << cap;
    EXPECT_LE(dp.total_weight_units, cap);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpVsBruteForce, ::testing::Range(0, 6));

TEST(Knapsack, ChosenWeightsNeverExceedCapacity) {
  Rng rng(555);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::vector<CachingOption>> groups;
    for (std::size_t key = 0; key < 8; ++key) {
      groups.push_back({opt("k" + std::to_string(key), 1 + rng.next_below(9),
                            static_cast<double>(1 + rng.next_below(50)))});
    }
    const std::size_t cap = rng.next_below(30);
    const auto r = solve_dp(groups, cap);
    EXPECT_LE(r.total_weight_units, cap);
    double value = 0.0;
    for (const auto& o : r.chosen) value += o.value;
    EXPECT_DOUBLE_EQ(value, r.total_value);
  }
}

TEST(Knapsack, PaperStyleInstanceMixesWeights) {
  // Zipf-ish popularity: a handful of hot keys, long cold tail; options at
  // weights {1,3,5,7,9} with the paper's improvement profile
  // (2000/2800/3200/3320/3345 from Table I). With a small cache, the DP
  // should cache hot objects heavily and still squeeze value from the tail.
  const std::vector<double> improvement = {2000, 2800, 3200, 3320, 3345};
  const std::vector<std::size_t> weights = {1, 3, 5, 7, 9};
  std::vector<std::vector<CachingOption>> groups;
  for (int key = 0; key < 30; ++key) {
    const double popularity = 100.0 / (1.0 + key);  // zipf-1-ish
    std::vector<CachingOption> group;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      group.push_back(opt("object" + std::to_string(key), weights[i],
                          popularity * improvement[i]));
    }
    groups.push_back(std::move(group));
  }
  const auto r = solve_dp(groups, 90);  // 10 MB cache in chunk units

  // Brute force is exponential; verify optimality on a truncated instance.
  const std::vector<std::vector<CachingOption>> head(groups.begin(),
                                                     groups.begin() + 8);
  EXPECT_EQ(solve_brute_force(head, 20).total_value,
            solve_dp(head, 20).total_value);

  // The hottest key must be cached at high weight, and more keys than a
  // full-replica-only policy (90/9 = 10) must appear.
  std::size_t hottest_weight = 0;
  for (const auto& o : r.chosen) {
    if (o.key == "object0") hottest_weight = o.weight;
  }
  EXPECT_GE(hottest_weight, 5u);
  EXPECT_GT(r.chosen.size(), 10u);
  EXPECT_LE(r.total_weight_units, 90u);
}

TEST(Knapsack, BruteForceHonorsCapacityToo) {
  const std::vector<std::vector<CachingOption>> groups = {
      {opt("a", 4, 9.0)},
      {opt("b", 4, 9.5)},
      {opt("c", 4, 9.9)},
  };
  const auto r = solve_brute_force(groups, 8);
  EXPECT_EQ(r.chosen.size(), 2u);
  EXPECT_DOUBLE_EQ(r.total_value, 19.4);
}

}  // namespace
}  // namespace agar::core
