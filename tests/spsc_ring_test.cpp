// Lock-free SPSC ring: bounded capacity, FIFO order, cross-thread handoff.
#include "sim/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace agar::sim {
namespace {

TEST(SpscRing, FifoWithinCapacity) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_EQ(ring.size(), 8u);
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, RejectsWhenFullWithoutConsumingTheSlot) {
  SpscRing<std::vector<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::vector<int>{1}));
  EXPECT_TRUE(ring.try_push(std::vector<int>{2}));
  std::vector<int> spilled = {3, 4, 5};
  EXPECT_FALSE(ring.try_push(std::move(spilled)));
  // The rejected slot is intact — the engine spills it to a side vector.
  EXPECT_EQ(spilled.size(), 3u);
  std::vector<int> out;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(std::move(spilled)));
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(std::uint64_t(i)));
    if (i % 3 == 0) continue;  // keep some occupancy across the wrap
    std::uint64_t out = 0;
    while (ring.try_pop(out)) EXPECT_EQ(out, expected++);
  }
}

TEST(SpscRing, CrossThreadTransferDeliversEverythingInOrder) {
  // One producer, one consumer, ring much smaller than the message count:
  // exercises the full/empty paths and the acquire/release handoff (the
  // TSan CI job runs this too).
  constexpr std::uint64_t kCount = 200000;
  SpscRing<std::uint64_t> ring(64);
  std::vector<std::uint64_t> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    std::uint64_t out = 0;
    while (received.size() < kCount) {
      if (ring.try_pop(out)) received.push_back(out);
    }
  });
  for (std::uint64_t i = 0; i < kCount;) {
    if (ring.try_push(std::uint64_t(i))) ++i;
  }
  consumer.join();
  ASSERT_EQ(received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) EXPECT_EQ(received[i], i);
}

}  // namespace
}  // namespace agar::sim
