// Workload generators: Zipfian CDF properties (the Fig. 9 data source),
// uniform sanity, determinism.
#include "client/workload.hpp"

#include <gtest/gtest.h>

#include <map>

namespace agar::client {
namespace {

TEST(Uniform, EmptyUniverseThrows) {
  EXPECT_THROW(UniformGenerator(0), std::invalid_argument);
}

TEST(Uniform, CoversUniverseEvenly) {
  UniformGenerator gen(10);
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[gen.next_index(rng)];
  for (const int c : counts) EXPECT_NEAR(c, n / 10, n / 80);
}

TEST(Zipfian, ValidatesInput) {
  EXPECT_THROW(ZipfianGenerator(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfianGenerator(10, -0.5), std::invalid_argument);
}

TEST(Zipfian, SkewZeroIsUniform) {
  ZipfianGenerator gen(100, 0.0);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(gen.pmf(i), 0.01, 1e-12);
  }
}

TEST(Zipfian, PmfIsDecreasing) {
  ZipfianGenerator gen(300, 1.1);
  for (std::size_t i = 1; i < 300; ++i) {
    EXPECT_GE(gen.pmf(i - 1), gen.pmf(i));
  }
}

TEST(Zipfian, CdfIsMonotoneAndReachesOne) {
  ZipfianGenerator gen(300, 1.1);
  double prev = 0.0;
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_GE(gen.cdf(i), prev);
    prev = gen.cdf(i);
  }
  EXPECT_DOUBLE_EQ(gen.cdf(299), 1.0);
  EXPECT_DOUBLE_EQ(gen.cdf(1000), 1.0);
}

TEST(Zipfian, HigherSkewConcentratesMass) {
  // Fig. 9's point: the top-5 objects' share grows with the skew.
  ZipfianGenerator low(300, 0.5), mid(300, 1.1), high(300, 1.4);
  EXPECT_LT(low.cdf(4), mid.cdf(4));
  EXPECT_LT(mid.cdf(4), high.cdf(4));
}

TEST(Zipfian, SamplesFollowPmf) {
  ZipfianGenerator gen(50, 1.1);
  Rng rng(11);
  std::vector<int> counts(50, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[gen.next_index(rng)];
  // Rank 0 should match its pmf within a few percent.
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, gen.pmf(0),
              gen.pmf(0) * 0.05);
  // Monotone-ish: rank 0 clearly more popular than rank 10.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[40]);
}

TEST(Zipfian, Paper5PercentRule) {
  // §II-B cites skewed workloads where few objects dominate; with skew 1.1
  // over 300 objects, the top 15 (5%) must account for well over a third of
  // accesses.
  ZipfianGenerator gen(300, 1.1);
  EXPECT_GT(gen.cdf(14), 0.35);
}

TEST(WorkloadSpec, Labels) {
  EXPECT_EQ(WorkloadSpec::uniform().label(), "uniform");
  EXPECT_EQ(WorkloadSpec::zipfian(1.1).label(), "zipf-1.1");
}

TEST(WorkloadSpec, FactoryMakesRightGenerator) {
  auto uni = make_generator(WorkloadSpec::uniform(), 10);
  auto zipf = make_generator(WorkloadSpec::zipfian(1.0), 10);
  EXPECT_NE(dynamic_cast<UniformGenerator*>(uni.get()), nullptr);
  EXPECT_NE(dynamic_cast<ZipfianGenerator*>(zipf.get()), nullptr);
}

TEST(Workload, KeysFollowBackendNaming) {
  Workload w(WorkloadSpec::zipfian(1.1), 300, 42);
  for (int i = 0; i < 100; ++i) {
    const ObjectKey key = w.next_key();
    EXPECT_EQ(key.rfind("object", 0), 0u) << key;
    const int n = std::stoi(key.substr(6));
    EXPECT_GE(n, 0);
    EXPECT_LT(n, 300);
  }
}

TEST(Workload, SameSeedSameStream) {
  Workload a(WorkloadSpec::zipfian(1.1), 300, 99);
  Workload b(WorkloadSpec::zipfian(1.1), 300, 99);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.next_key(), b.next_key());
}

TEST(Workload, DifferentSeedsDiffer) {
  Workload a(WorkloadSpec::zipfian(1.1), 300, 1);
  Workload b(WorkloadSpec::zipfian(1.1), 300, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_key() == b.next_key()) ++same;
  }
  EXPECT_LT(same, 60);  // zipf makes collisions common but not total
}

TEST(Workload, ZipfFavorsObjectZero) {
  Workload w(WorkloadSpec::zipfian(1.4), 300, 7);
  std::map<ObjectKey, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[w.next_key()];
  int max_count = 0;
  ObjectKey max_key;
  for (const auto& [key, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_key = key;
    }
  }
  EXPECT_EQ(max_key, "object0");
}

}  // namespace
}  // namespace agar::client
