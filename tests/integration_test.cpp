// End-to-end integration: the full paper deployment exercised through the
// public API, with real payload verification, reconfiguration over simulated
// time, failure injection, and the headline Agar-vs-static-policy ordering
// on a scaled-down working set.
#include <gtest/gtest.h>

#include "client/report.hpp"
#include "client/runner.hpp"

namespace agar::client {
namespace {

ExperimentConfig paper_mini() {
  // A scaled-down §V-A setup: fewer/smaller objects so verify-mode tests
  // stay fast, same structure (RS(9,3), six regions, zipf 1.1, 2 clients).
  ExperimentConfig c;
  c.deployment.num_objects = 40;
  c.deployment.object_size_bytes = 18_KB;
  c.deployment.seed = 2026;
  c.workload = WorkloadSpec::zipfian(1.1);
  c.ops_per_run = 1500;
  c.runs = 2;
  c.num_clients = 2;
  // The paper's 30 s period matters: shorter periods see too few samples
  // per period at this scale, the EWMA gets noisy, and configuration churn
  // erodes Agar's advantage (see EXPERIMENTS.md notes).
  c.reconfig_period_ms = 30'000.0;
  return c;
}

std::size_t cache_for_objects(const ExperimentConfig& c, double objects) {
  // Capacity equivalent to `objects` full 9-chunk replicas.
  const std::size_t chunk = (c.deployment.object_size_bytes + 8) / 9;
  return static_cast<std::size_t>(9.0 * objects * static_cast<double>(chunk));
}

TEST(Integration, AgarBeatsStaticPoliciesOnSkewedWorkload) {
  auto config = paper_mini();
  const std::size_t cache = cache_for_objects(config, 4.0);  // ~10% of data

  const auto results = run_comparison(
      config, {
                  StrategySpec::agar(cache),
                  StrategySpec::lru(1, cache),
                  StrategySpec::lru(9, cache),
                  StrategySpec::lfu(5, cache),
                  StrategySpec::lfu(9, cache),
                  StrategySpec::backend(),
              });

  const double agar = results[0].mean_latency_ms();
  const double backend = results.back().mean_latency_ms();
  // Agar must beat the backend massively and every static policy we ran
  // (the paper reports 16-41% over the best static policy; we only assert
  // the ordering, not the magnitude).
  EXPECT_LT(agar, backend);
  for (std::size_t i = 1; i + 1 < results.size(); ++i) {
    EXPECT_LT(agar, results[i].mean_latency_ms() * 1.02)
        << "vs " << results[i].spec.label();
  }
}

TEST(Integration, HitRatioOrderingMatchesFig7) {
  auto config = paper_mini();
  const std::size_t cache = cache_for_objects(config, 4.0);
  const auto lru1 = run_experiment(config, StrategySpec::lru(1, cache));
  const auto lru9 = run_experiment(config, StrategySpec::lru(9, cache));
  // Fewer chunks per object -> more objects fit -> higher hit ratio.
  EXPECT_GT(lru1.hit_ratio(), lru9.hit_ratio());
}

TEST(Integration, VerifiedEndToEndWithRealPayloads) {
  auto config = paper_mini();
  config.verify_data = true;
  config.ops_per_run = 200;
  config.runs = 1;
  const auto agar =
      run_experiment(config, StrategySpec::agar(cache_for_objects(config, 4)));
  EXPECT_EQ(agar.runs[0].verified, agar.runs[0].ops);
}

TEST(Integration, CacheSizeSweepIsMonotoneForLru) {
  auto config = paper_mini();
  config.ops_per_run = 400;
  double prev = std::numeric_limits<double>::infinity();
  for (const double objects : {1.0, 4.0, 16.0, 40.0}) {
    const auto r = run_experiment(
        config, StrategySpec::lru(9, cache_for_objects(config, objects)));
    // Larger caches can only help (tolerate small jitter noise).
    EXPECT_LE(r.mean_latency_ms(), prev * 1.05);
    prev = r.mean_latency_ms();
  }
}

TEST(Integration, SkewSweepHelpsCachingSystems) {
  auto config = paper_mini();
  config.ops_per_run = 400;
  const std::size_t cache = cache_for_objects(config, 4.0);
  const auto uniform_cfg = [&] {
    auto c = config;
    c.workload = WorkloadSpec::uniform();
    return c;
  }();
  const auto skewed_cfg = [&] {
    auto c = config;
    c.workload = WorkloadSpec::zipfian(1.4);
    return c;
  }();
  const auto uniform = run_experiment(uniform_cfg, StrategySpec::lfu(9, cache));
  const auto skewed = run_experiment(skewed_cfg, StrategySpec::lfu(9, cache));
  EXPECT_LT(skewed.mean_latency_ms(), uniform.mean_latency_ms());
  EXPECT_GT(skewed.hit_ratio(), uniform.hit_ratio());
}

TEST(Integration, FrankfurtVsSydneyGeographyMatters) {
  auto config = paper_mini();
  config.ops_per_run = 300;
  auto sydney_cfg = config;
  sydney_cfg.client_region = sim::region::kSydney;
  const auto fra = run_experiment(config, StrategySpec::backend());
  const auto syd = run_experiment(sydney_cfg, StrategySpec::backend());
  // Both dominated by their furthest needed chunk; Sydney's is further.
  EXPECT_GT(syd.mean_latency_ms(), fra.mean_latency_ms() * 0.9);
}

TEST(Integration, AgarSurvivesRegionOutageMidRun) {
  // Fail a region before the run; every read must still assemble k chunks
  // (fallback to parity) and verify.
  auto config = paper_mini();
  config.verify_data = true;
  config.ops_per_run = 150;
  config.runs = 1;

  DeploymentConfig dep = config.deployment;
  Deployment deployment(dep);
  deployment.network().fail_region(sim::region::kVirginia);

  auto strategy =
      make_strategy(config, StrategySpec::agar(cache_for_objects(config, 4)),
                    deployment);
  strategy->warm_up();
  Workload workload(config.workload, dep.num_objects, 99);
  for (int i = 0; i < 150; ++i) {
    const auto r = strategy->read(workload.next_key());
    EXPECT_TRUE(r.verified);
  }
}

TEST(Integration, ReportFormattingSmoke) {
  auto config = paper_mini();
  config.ops_per_run = 100;
  config.runs = 1;
  const auto results =
      run_comparison(config, {StrategySpec::backend(),
                              StrategySpec::agar(cache_for_objects(config, 4))});
  const std::string table = format_table(
      {"system", "latency"},
      {{results[0].spec.label(), fmt_ms(results[0].mean_latency_ms())},
       {results[1].spec.label(), fmt_ms(results[1].mean_latency_ms())}});
  EXPECT_NE(table.find("Backend"), std::string::npos);
  EXPECT_NE(table.find("Agar"), std::string::npos);
  EXPECT_EQ(fmt_pct(0.5), "50.0%");
}

}  // namespace
}  // namespace agar::client
