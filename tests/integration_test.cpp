// End-to-end integration: the full paper deployment exercised through the
// public API (declarative specs + registries), with real payload
// verification, reconfiguration over simulated time, failure injection,
// and the headline Agar-vs-static-policy ordering on a scaled-down
// working set.
#include <gtest/gtest.h>

#include "api/api.hpp"
#include "client/report.hpp"
#include "client/runner.hpp"

namespace agar::client {
namespace {

ExperimentConfig paper_mini() {
  // A scaled-down §V-A setup: fewer/smaller objects so verify-mode tests
  // stay fast, same structure (RS(9,3), six regions, zipf 1.1, 2 clients).
  ExperimentConfig c;
  c.deployment.num_objects = 40;
  c.deployment.object_size_bytes = 18_KB;
  c.deployment.seed = 2026;
  c.workload = WorkloadSpec::zipfian(1.1);
  c.ops_per_run = 1500;
  c.runs = 2;
  c.num_clients = 2;
  // The paper's 30 s period matters: shorter periods see too few samples
  // per period at this scale, the EWMA gets noisy, and configuration churn
  // erodes Agar's advantage (see EXPERIMENTS.md notes).
  c.reconfig_period_ms = 30'000.0;
  return c;
}

std::size_t cache_for_objects(const ExperimentConfig& c, double objects) {
  // Capacity equivalent to `objects` full 9-chunk replicas.
  const std::size_t chunk = (c.deployment.object_size_bytes + 8) / 9;
  return static_cast<std::size_t>(9.0 * objects * static_cast<double>(chunk));
}

api::ExperimentSpec spec_for(const ExperimentConfig& config,
                             const std::vector<std::string>& pairs) {
  api::ExperimentSpec spec;
  spec.experiment = config;
  for (const auto& pair : pairs) spec.set_pair(pair);
  return spec;
}

TEST(Integration, AgarBeatsStaticPoliciesOnSkewedWorkload) {
  auto config = paper_mini();
  // ~10% of the data set.
  const std::string cache =
      "cache_bytes=" + std::to_string(cache_for_objects(config, 4.0));

  const auto reports = api::run_all({
      spec_for(config, {"system=agar", cache}),
      spec_for(config, {"system=lru", "chunks=1", cache}),
      spec_for(config, {"system=lru", "chunks=9", cache}),
      spec_for(config, {"system=lfu", "chunks=5", cache}),
      spec_for(config, {"system=lfu", "chunks=9", cache}),
      spec_for(config, {"system=backend"}),
  });

  const double agar = reports[0].result.mean_latency_ms();
  const double backend = reports.back().result.mean_latency_ms();
  // Agar must beat the backend massively and every static policy we ran
  // (the paper reports 16-41% over the best static policy; we only assert
  // the ordering, not the magnitude).
  EXPECT_LT(agar, backend);
  for (std::size_t i = 1; i + 1 < reports.size(); ++i) {
    EXPECT_LT(agar, reports[i].result.mean_latency_ms() * 1.02)
        << "vs " << reports[i].label();
  }
}

TEST(Integration, HitRatioOrderingMatchesFig7) {
  auto config = paper_mini();
  const std::string cache =
      "cache_bytes=" + std::to_string(cache_for_objects(config, 4.0));
  const auto lru1 =
      api::run(spec_for(config, {"system=lru", "chunks=1", cache})).result;
  const auto lru9 =
      api::run(spec_for(config, {"system=lru", "chunks=9", cache})).result;
  // Fewer chunks per object -> more objects fit -> higher hit ratio.
  EXPECT_GT(lru1.hit_ratio(), lru9.hit_ratio());
}

TEST(Integration, VerifiedEndToEndWithRealPayloads) {
  auto config = paper_mini();
  config.verify_data = true;
  config.ops_per_run = 200;
  config.runs = 1;
  const auto agar =
      api::run(spec_for(config,
                        {"system=agar",
                         "cache_bytes=" +
                             std::to_string(cache_for_objects(config, 4))}))
          .result;
  EXPECT_EQ(agar.runs[0].verified, agar.runs[0].ops);
}

TEST(Integration, CacheSizeSweepIsMonotoneForLru) {
  auto config = paper_mini();
  config.ops_per_run = 400;
  double prev = std::numeric_limits<double>::infinity();
  for (const double objects : {1.0, 4.0, 16.0, 40.0}) {
    const auto r =
        api::run(spec_for(config,
                          {"system=lru", "chunks=9",
                           "cache_bytes=" + std::to_string(cache_for_objects(
                                                config, objects))}))
            .result;
    // Larger caches can only help (tolerate small jitter noise).
    EXPECT_LE(r.mean_latency_ms(), prev * 1.05);
    prev = r.mean_latency_ms();
  }
}

TEST(Integration, SkewSweepHelpsCachingSystems) {
  auto config = paper_mini();
  config.ops_per_run = 400;
  const std::string cache =
      "cache_bytes=" + std::to_string(cache_for_objects(config, 4.0));
  const auto base = spec_for(config, {"system=lfu", "chunks=9", cache});
  const auto uniform = api::run(base.with({"workload=uniform"})).result;
  const auto skewed = api::run(base.with({"workload=zipf:1.4"})).result;
  EXPECT_LT(skewed.mean_latency_ms(), uniform.mean_latency_ms());
  EXPECT_GT(skewed.hit_ratio(), uniform.hit_ratio());
}

TEST(Integration, FrankfurtVsSydneyGeographyMatters) {
  auto config = paper_mini();
  config.ops_per_run = 300;
  const auto base = spec_for(config, {"system=backend"});
  const auto fra = api::run(base.with({"region=frankfurt"})).result;
  const auto syd = api::run(base.with({"region=sydney"})).result;
  // Both dominated by their furthest needed chunk; Sydney's is further.
  EXPECT_GT(syd.mean_latency_ms(), fra.mean_latency_ms() * 0.9);
}

TEST(Integration, AgarSurvivesRegionOutageMidRun) {
  // Fail a region before the run; every read must still assemble k chunks
  // (fallback to parity) and verify.
  auto config = paper_mini();
  config.verify_data = true;
  config.ops_per_run = 150;
  config.runs = 1;

  DeploymentConfig dep = config.deployment;
  Deployment deployment(dep);
  deployment.network().fail_region(sim::region::kVirginia);

  const auto spec = spec_for(
      config, {"system=agar",
               "cache_bytes=" + std::to_string(cache_for_objects(config, 4))});
  const auto strategy =
      api::make_strategy(spec, deployment, config.client_region);
  strategy->warm_up();
  Workload workload(config.workload, dep.num_objects, 99);
  for (int i = 0; i < 150; ++i) {
    const auto r = strategy->read(workload.next_key());
    EXPECT_TRUE(r.verified);
  }
}

TEST(Integration, ReportFormattingSmoke) {
  auto config = paper_mini();
  config.ops_per_run = 100;
  config.runs = 1;
  const auto reports = api::run_all(
      {spec_for(config, {"system=backend"}),
       spec_for(config,
                {"system=agar",
                 "cache_bytes=" +
                     std::to_string(cache_for_objects(config, 4))})});
  const std::string table = format_table(
      {"system", "latency"},
      {{reports[0].label(), fmt_ms(reports[0].result.mean_latency_ms())},
       {reports[1].label(), fmt_ms(reports[1].result.mean_latency_ms())}});
  EXPECT_NE(table.find("Backend"), std::string::npos);
  EXPECT_NE(table.find("Agar"), std::string::npos);
  EXPECT_EQ(fmt_pct(0.5), "50.0%");
}

}  // namespace
}  // namespace agar::client
