// Single-decree Paxos: acceptor safety, proposer quorum logic, value
// adoption, contention, and failure behaviour.
#include <gtest/gtest.h>

#include "paxos/proposer.hpp"
#include "sim/topology.hpp"

namespace agar::paxos {
namespace {

TEST(Ballot, PacksRoundAndProposer) {
  const Ballot b = make_ballot(7, 3);
  EXPECT_EQ(ballot_round(b), 7u);
  EXPECT_EQ(ballot_proposer(b), 3u);
  // Higher rounds dominate regardless of proposer id.
  EXPECT_GT(make_ballot(8, 0), make_ballot(7, 0xffffffffu));
}

TEST(Acceptor, PromisesMonotonically) {
  Acceptor a;
  EXPECT_TRUE(a.handle_prepare(make_ballot(2, 1)).ok);
  // Same or lower ballot is rejected.
  EXPECT_FALSE(a.handle_prepare(make_ballot(2, 1)).ok);
  EXPECT_FALSE(a.handle_prepare(make_ballot(1, 9)).ok);
  EXPECT_TRUE(a.handle_prepare(make_ballot(3, 0)).ok);
}

TEST(Acceptor, AcceptRequiresPromise) {
  Acceptor a;
  (void)a.handle_prepare(make_ballot(5, 1));
  // Lower-ballot accept is refused.
  EXPECT_FALSE(a.handle_accept(make_ballot(4, 1), "x").ok);
  EXPECT_TRUE(a.handle_accept(make_ballot(5, 1), "x").ok);
  EXPECT_EQ(a.accepted_value(), "x");
}

TEST(Acceptor, AcceptAtHigherBallotWithoutPrepareIsAllowed) {
  // Accept carries an implicit promise (ballot >= promised).
  Acceptor a;
  EXPECT_TRUE(a.handle_accept(make_ballot(1, 1), "v").ok);
  EXPECT_EQ(a.promised(), make_ballot(1, 1));
}

TEST(Acceptor, PromiseReportsPriorAccept) {
  Acceptor a;
  (void)a.handle_accept(make_ballot(1, 1), "old");
  const Promise p = a.handle_prepare(make_ballot(2, 2));
  ASSERT_TRUE(p.ok);
  ASSERT_TRUE(p.accepted_ballot.has_value());
  EXPECT_EQ(*p.accepted_ballot, make_ballot(1, 1));
  EXPECT_EQ(*p.accepted_value, "old");
}

class ProposerTest : public ::testing::Test {
 protected:
  ProposerTest()
      : topology_(sim::aws_six_regions()),
        network_(sim::LatencyModel(&topology_, {}, 77)),
        acceptors_(6) {}

  std::vector<Acceptor*> acceptor_ptrs() {
    std::vector<Acceptor*> out;
    for (auto& a : acceptors_) out.push_back(&a);
    return out;
  }

  Proposer make_proposer(RegionId region, std::uint32_t id = 1) {
    ProposerParams p;
    p.region = region;
    p.proposer_id = id;
    return Proposer(acceptor_ptrs(), &network_, p);
  }

  sim::Topology topology_;
  sim::Network network_;
  std::vector<Acceptor> acceptors_;
};

TEST_F(ProposerTest, NullNetworkThrows) {
  ProposerParams p;
  EXPECT_THROW(Proposer(acceptor_ptrs(), nullptr, p), std::invalid_argument);
}

TEST_F(ProposerTest, NoAcceptorsThrows) {
  ProposerParams p;
  EXPECT_THROW(Proposer({nullptr, nullptr}, &network_, p),
               std::invalid_argument);
}

TEST_F(ProposerTest, QuorumIsMajority) {
  auto proposer = make_proposer(0);
  EXPECT_EQ(proposer.quorum(), 4u);  // 6 acceptors -> 4
}

TEST_F(ProposerTest, ChoosesValueOnCleanRun) {
  auto proposer = make_proposer(sim::region::kFrankfurt);
  const ProposeOutcome out = proposer.propose("hello");
  EXPECT_TRUE(out.chosen);
  EXPECT_EQ(out.value, "hello");
  EXPECT_EQ(out.rounds, 1u);
  EXPECT_GT(out.latency_ms, 0.0);
}

TEST_F(ProposerTest, LatencyIsTwoQuorumRoundTrips) {
  // With zero jitter, each phase costs the 4th-smallest RTT from
  // Frankfurt: regions sorted 80,100,220,470,... -> 470 * factor each.
  sim::LatencyModelParams lp;
  lp.jitter_fraction = 0.0;
  sim::Network quiet(sim::LatencyModel(&topology_, lp, 1));
  ProposerParams p;
  p.region = sim::region::kFrankfurt;
  p.proposer_id = 1;
  p.message_rtt_factor = 0.3;
  Proposer proposer(acceptor_ptrs(), &quiet, p);
  const ProposeOutcome out = proposer.propose("v");
  ASSERT_TRUE(out.chosen);
  EXPECT_DOUBLE_EQ(out.latency_ms, 2 * 470.0 * 0.3);
}

TEST_F(ProposerTest, SecondProposerAdoptsChosenValue) {
  auto first = make_proposer(0, 1);
  ASSERT_TRUE(first.propose("first").chosen);
  auto second = make_proposer(5, 2);
  const ProposeOutcome out = second.propose("second");
  ASSERT_TRUE(out.chosen);
  // Safety: once chosen, always chosen.
  EXPECT_EQ(out.value, "first");
}

TEST_F(ProposerTest, PartialAcceptanceStillConverges) {
  // One acceptor accepts "A" at a ballot LOWER than the proposer's, so its
  // promise reports the accepted value; Paxos obliges the proposer to
  // adopt it instead of its own "B".
  (void)acceptors_[0].handle_accept(make_ballot(0, 9), "A");
  auto proposer = make_proposer(0, 2);
  const ProposeOutcome out = proposer.propose("B");
  ASSERT_TRUE(out.chosen);
  EXPECT_EQ(out.value, "A");
}

TEST_F(ProposerTest, UnreportedMinorityAcceptMayBeOverridden) {
  // If the acceptor holding "A" NACKs the prepare (its promise is higher),
  // its value never reaches the proposer and "B" can legally be chosen:
  // "A" was accepted by a minority and never chosen.
  (void)acceptors_[0].handle_accept(make_ballot(5, 9), "A");
  auto proposer = make_proposer(0, 2);  // starts at round 1 < 5
  const ProposeOutcome out = proposer.propose("B");
  ASSERT_TRUE(out.chosen);
  EXPECT_EQ(out.value, "B");
}

TEST_F(ProposerTest, SurvivesMinorityFailures) {
  network_.fail_region(sim::region::kTokyo);
  network_.fail_region(sim::region::kSydney);
  auto proposer = make_proposer(sim::region::kFrankfurt);
  const ProposeOutcome out = proposer.propose("v");
  EXPECT_TRUE(out.chosen);
}

TEST_F(ProposerTest, FailsWithoutQuorum) {
  network_.fail_region(1);
  network_.fail_region(2);
  network_.fail_region(3);
  auto proposer = make_proposer(0);
  const ProposeOutcome out = proposer.propose("v");
  EXPECT_FALSE(out.chosen);  // only 3 of 6 reachable < quorum 4
}

TEST_F(ProposerTest, DuelingProposersEventuallyAgree) {
  auto alice = make_proposer(0, 1);
  auto bob = make_proposer(5, 2);
  const ProposeOutcome a = alice.propose("alice");
  const ProposeOutcome b = bob.propose("bob");
  ASSERT_TRUE(a.chosen);
  ASSERT_TRUE(b.chosen);
  EXPECT_EQ(a.value, b.value);  // consensus: both report the same value
}

TEST_F(ProposerTest, ConcurrentAppendLoserAdvancesSlot) {
  // The replicated log's append protocol, played out by hand for two
  // regions appending concurrently: both contend for the same slot, Paxos
  // binds exactly one record to it, and the loser — whose propose() chose
  // the winner's value, not its own — re-proposes in the next slot.
  std::vector<Acceptor> slot0(6), slot1(6);
  auto ptrs = [](std::vector<Acceptor>& slot) {
    std::vector<Acceptor*> out;
    for (auto& a : slot) out.push_back(&a);
    return out;
  };
  ProposerParams fra;
  fra.region = sim::region::kFrankfurt;
  fra.proposer_id = 1;
  ProposerParams syd;
  syd.region = sim::region::kSydney;
  syd.proposer_id = 2;

  Proposer winner(ptrs(slot0), &network_, fra);
  const ProposeOutcome w = winner.propose("cfg-frankfurt");
  ASSERT_TRUE(w.chosen);
  ASSERT_EQ(w.value, "cfg-frankfurt");

  // Single-decree safety: the concurrent appender learns slot 0 is taken.
  Proposer loser(ptrs(slot0), &network_, syd);
  const ProposeOutcome l = loser.propose("cfg-sydney");
  ASSERT_TRUE(l.chosen);
  EXPECT_EQ(l.value, "cfg-frankfurt");

  // So it advances: its own record lands in slot 1, untouched by slot 0's
  // acceptor state.
  Proposer retry(ptrs(slot1), &network_, syd);
  const ProposeOutcome r = retry.propose("cfg-sydney");
  ASSERT_TRUE(r.chosen);
  EXPECT_EQ(r.value, "cfg-sydney");
}

}  // namespace
}  // namespace agar::paxos
