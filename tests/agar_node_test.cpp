// AgarNode facade: read planning, population protocol, periodic
// reconfiguration on the event loop.
#include "core/agar_node.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

namespace agar::core {
namespace {

class AgarNodeTest : public ::testing::Test {
 protected:
  AgarNodeTest()
      : topology_(sim::aws_six_regions()),
        network_(sim::LatencyModel(&topology_, {}, 7)),
        backend_(6, ec::CodecParams{9, 3},
                 std::make_shared<ec::RoundRobinPlacement>(false)) {
    for (int i = 0; i < 10; ++i) {
      backend_.register_object("object" + std::to_string(i), 1_MB);
    }
  }

  AgarNodeParams params(std::size_t cache_bytes = 10_MB) {
    AgarNodeParams p;
    p.region = sim::region::kFrankfurt;
    p.cache_capacity_bytes = cache_bytes;
    p.cache_manager.candidate_weights = {1, 3, 5, 7, 9};
    return p;
  }

  sim::Topology topology_;
  sim::Network network_;
  store::BackendCluster backend_;
};

TEST_F(AgarNodeTest, PlanCoversExactlyKChunks) {
  AgarNode node(&backend_, &network_, params());
  node.warm_up();
  const ReadPlan plan = node.plan_read("object0");
  EXPECT_EQ(plan.chunks_on_path(), 9u);
  EXPECT_TRUE(plan.from_cache.empty());  // nothing configured yet
  EXPECT_DOUBLE_EQ(plan.monitor_overhead_ms, 0.5);
}

TEST_F(AgarNodeTest, PlanPrefersCheapRegions) {
  AgarNode node(&backend_, &network_, params());
  node.warm_up();
  const ReadPlan plan = node.plan_read("object0");
  // The m = 3 most distant chunks (2x Sydney + 1x Tokyo from Frankfurt)
  // must not be on the plan.
  std::size_t sydney = 0, tokyo = 0;
  for (const auto& [idx, region] : plan.from_backend) {
    if (region == sim::region::kSydney) ++sydney;
    if (region == sim::region::kTokyo) ++tokyo;
  }
  EXPECT_EQ(sydney, 0u);
  EXPECT_LE(tokyo, 1u);
}

TEST_F(AgarNodeTest, PlanRecordsAccessInMonitor) {
  AgarNode node(&backend_, &network_, params());
  node.warm_up();
  (void)node.plan_read("object3");
  (void)node.plan_read("object3");
  EXPECT_EQ(node.request_monitor().accesses(), 2u);
  EXPECT_GT(node.request_monitor().popularity("object3"), 0.0);
}

TEST_F(AgarNodeTest, ConfiguredChunksMarkedForPopulation) {
  AgarNode node(&backend_, &network_, params());
  node.warm_up();
  for (int i = 0; i < 50; ++i) (void)node.plan_read("object0");
  node.reconfigure();
  ASSERT_TRUE(node.cache_manager().current().entries.contains("object0"));

  const ReadPlan plan = node.plan_read("object0");
  // Cache not yet populated: configured chunks appear either in
  // populate_after_read (if fetched on-path) or async_populate.
  const std::size_t configured =
      node.cache_manager().current().entries.at("object0").chunks.size();
  EXPECT_EQ(plan.populate_after_read.size() + plan.async_populate.size(),
            configured);
  EXPECT_TRUE(plan.from_cache.empty());
}

TEST_F(AgarNodeTest, ResidentChunksComeFromCache) {
  AgarNode node(&backend_, &network_, params());
  node.warm_up();
  for (int i = 0; i < 50; ++i) (void)node.plan_read("object0");
  node.reconfigure();
  const auto& opt = node.cache_manager().current().entries.at("object0");

  // Simulate the client population step.
  const std::size_t chunk_size = backend_.object_info("object0").chunk_size;
  for (const ChunkIndex idx : opt.chunks) {
    EXPECT_TRUE(node.cache().put(ChunkId{"object0", idx}.cache_key(),
                                 Bytes(chunk_size, 0)));
  }

  const ReadPlan plan = node.plan_read("object0");
  EXPECT_EQ(plan.from_cache.size(), opt.chunks.size());
  EXPECT_EQ(plan.chunks_on_path(), 9u);
  EXPECT_TRUE(plan.async_populate.empty());
  // Cached chunks and backend chunks must not overlap.
  for (const ChunkIndex c : plan.from_cache) {
    for (const auto& [idx, region] : plan.from_backend) {
      EXPECT_NE(c, idx);
    }
  }
}

TEST_F(AgarNodeTest, AttachToLoopReconfiguresPeriodically) {
  AgarNodeParams p = params();
  p.reconfig_period_ms = 1000.0;
  AgarNode node(&backend_, &network_, p);
  node.warm_up();
  sim::EventLoop loop;
  node.attach_to_loop(loop);
  for (int i = 0; i < 20; ++i) (void)node.plan_read("object0");
  loop.run_until(3500.0);
  EXPECT_EQ(node.cache_manager().reconfigurations(), 3u);
}

TEST_F(AgarNodeTest, FullHitPlanHasNoBackendFetches) {
  AgarNode node(&backend_, &network_, params(100_MB));
  node.warm_up();
  for (int i = 0; i < 100; ++i) (void)node.plan_read("object0");
  node.reconfigure();
  const auto& entries = node.cache_manager().current().entries;
  ASSERT_TRUE(entries.contains("object0"));
  const auto& opt = entries.at("object0");
  // With a huge cache and one hot object the solver takes the full replica.
  ASSERT_EQ(opt.weight, 9u);
  const std::size_t chunk_size = backend_.object_info("object0").chunk_size;
  for (const ChunkIndex idx : opt.chunks) {
    node.cache().put(ChunkId{"object0", idx}.cache_key(),
                     Bytes(chunk_size, 0));
  }
  const ReadPlan plan = node.plan_read("object0");
  EXPECT_EQ(plan.from_cache.size(), 9u);
  EXPECT_TRUE(plan.from_backend.empty());
}

TEST_F(AgarNodeTest, ReconfigurationEvictsStaleResidents) {
  AgarNode node(&backend_, &network_, params(5_MB));
  node.warm_up();
  for (int i = 0; i < 50; ++i) (void)node.plan_read("object0");
  node.reconfigure();
  const auto opt0 = node.cache_manager().current().entries.at("object0");
  const std::size_t chunk_size = backend_.object_info("object0").chunk_size;
  for (const ChunkIndex idx : opt0.chunks) {
    node.cache().put(ChunkId{"object0", idx}.cache_key(),
                     Bytes(chunk_size, 0));
  }
  // Shift the workload for enough periods that object0 decays away.
  for (int period = 0; period < 8; ++period) {
    for (int i = 0; i < 100; ++i) (void)node.plan_read("object7");
    node.reconfigure();
  }
  EXPECT_FALSE(node.cache_manager().current().entries.contains("object0"));
  // Its chunks must be gone from the cache.
  for (const ChunkIndex idx : opt0.chunks) {
    EXPECT_FALSE(node.cache().contains(ChunkId{"object0", idx}.cache_key()));
  }
}

}  // namespace
}  // namespace agar::core
