// Byte helpers: deterministic payloads, FNV-1a, human formatting.
#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace agar {
namespace {

TEST(Bytes, DeterministicPayloadIsStable) {
  EXPECT_EQ(deterministic_payload("k", 100), deterministic_payload("k", 100));
}

TEST(Bytes, DeterministicPayloadVariesByKey) {
  EXPECT_NE(deterministic_payload("a", 64), deterministic_payload("b", 64));
}

TEST(Bytes, DeterministicPayloadSize) {
  EXPECT_EQ(deterministic_payload("x", 0).size(), 0u);
  EXPECT_EQ(deterministic_payload("x", 12345).size(), 12345u);
}

TEST(Bytes, Fnv1aKnownVector) {
  // FNV-1a 64-bit of empty input is the offset basis.
  EXPECT_EQ(fnv1a(std::string("")), 0xcbf29ce484222325ULL);
  // "a" -> published value.
  EXPECT_EQ(fnv1a(std::string("a")), 0xaf63dc4c8601ec8cULL);
}

TEST(Bytes, Fnv1aStringAndViewAgree) {
  const std::string s = "hello world";
  const BytesView v(reinterpret_cast<const std::uint8_t*>(s.data()),
                    s.size());
  EXPECT_EQ(fnv1a(s), fnv1a(v));
}

TEST(Bytes, FormatBytesUnits) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(1024), "1.0 KB");
  EXPECT_EQ(format_bytes(10 * 1024 * 1024), "10.0 MB");
  EXPECT_EQ(format_bytes(3ull * 1024 * 1024 * 1024), "3.0 GB");
}

TEST(Bytes, LiteralOperators) {
  EXPECT_EQ(1_KB, 1024u);
  EXPECT_EQ(1_MB, 1024u * 1024u);
  EXPECT_EQ(10_MB, 10u * 1024u * 1024u);
}

TEST(Bytes, ChunkIdCacheKey) {
  const ChunkId id{"object42", 3};
  EXPECT_EQ(id.cache_key(), "object42#3");
}

TEST(Bytes, ChunkIdEqualityAndHash) {
  const ChunkId a{"k", 1}, b{"k", 1}, c{"k", 2}, d{"j", 1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(std::hash<ChunkId>{}(a), std::hash<ChunkId>{}(b));
}

}  // namespace
}  // namespace agar
