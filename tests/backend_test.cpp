// Backend cluster: stripe distribution, metadata, end-to-end chunk access.
#include "store/backend.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace agar::store {
namespace {

BackendCluster make_cluster(std::size_t regions = 6,
                            ec::CodecParams params = {9, 3}) {
  return BackendCluster(regions, params,
                        std::make_shared<ec::RoundRobinPlacement>(false));
}

TEST(Backend, ConstructionValidation) {
  EXPECT_THROW(
      BackendCluster(0, ec::CodecParams{9, 3},
                     std::make_shared<ec::RoundRobinPlacement>(false)),
      std::invalid_argument);
  EXPECT_THROW(BackendCluster(6, ec::CodecParams{9, 3}, nullptr),
               std::invalid_argument);
}

TEST(Backend, PutDistributesChunksRoundRobin) {
  auto cluster = make_cluster();
  const Bytes payload = deterministic_payload("obj", 9000);
  cluster.put_object("obj", BytesView(payload));
  // 12 chunks over 6 regions -> 2 per bucket.
  for (RegionId r = 0; r < 6; ++r) {
    EXPECT_EQ(cluster.bucket(r).num_chunks(), 2u) << "region " << r;
  }
}

TEST(Backend, ObjectInfoHasAllLocations) {
  auto cluster = make_cluster();
  const Bytes payload = deterministic_payload("obj", 900);
  cluster.put_object("obj", BytesView(payload));
  const ObjectInfo info = cluster.object_info("obj");
  EXPECT_EQ(info.object_size, 900u);
  EXPECT_EQ(info.chunk_size, 100u);
  ASSERT_EQ(info.locations.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(info.locations[i].index, i);
    EXPECT_EQ(info.locations[i].region, i % 6);
  }
}

TEST(Backend, UnknownObjectThrows) {
  auto cluster = make_cluster();
  EXPECT_THROW((void)cluster.object_info("nope"), std::out_of_range);
  EXPECT_FALSE(cluster.has_object("nope"));
}

TEST(Backend, GetChunkFetchesFromRightBucket) {
  auto cluster = make_cluster();
  const Bytes payload = deterministic_payload("obj", 1800);
  cluster.put_object("obj", BytesView(payload));
  for (ChunkIndex i = 0; i < 12; ++i) {
    EXPECT_TRUE(cluster.get_chunk({"obj", i}).has_value()) << i;
  }
  EXPECT_FALSE(cluster.get_chunk({"other", 0}).has_value());
}

TEST(Backend, ChunksDecodeBackToObject) {
  auto cluster = make_cluster(6, ec::CodecParams{4, 2});
  const Bytes payload = deterministic_payload("rt", 4096);
  cluster.put_object("rt", BytesView(payload));
  std::vector<ec::Chunk> chunks;
  for (ChunkIndex i = 0; i < 4; ++i) {  // data chunks suffice
    const auto v = cluster.get_chunk({"rt", i});
    ASSERT_TRUE(v.has_value());
    chunks.push_back(ec::Chunk{i, Bytes(v->begin(), v->end())});
  }
  EXPECT_EQ(cluster.codec().decode(4096, chunks), payload);
}

TEST(Backend, RegisterObjectMetadataOnly) {
  auto cluster = make_cluster();
  cluster.register_object("meta", 1_MB);
  EXPECT_TRUE(cluster.has_object("meta"));
  const ObjectInfo info = cluster.object_info("meta");
  EXPECT_EQ(info.object_size, 1_MB);
  EXPECT_EQ(info.locations.size(), 12u);
  // No payloads were materialized.
  EXPECT_FALSE(cluster.get_chunk({"meta", 0}).has_value());
  for (RegionId r = 0; r < 6; ++r) {
    EXPECT_EQ(cluster.bucket(r).num_chunks(), 0u);
  }
}

TEST(Backend, PopulateWorkingSet) {
  auto cluster = make_cluster();
  populate_working_set(cluster, 10, 900);
  EXPECT_EQ(cluster.num_objects(), 10u);
  EXPECT_TRUE(cluster.has_object("object0"));
  EXPECT_TRUE(cluster.has_object("object9"));
  EXPECT_FALSE(cluster.has_object("object10"));
  // Each region holds 2 chunks per object.
  for (RegionId r = 0; r < 6; ++r) {
    EXPECT_EQ(cluster.bucket(r).num_chunks(), 20u);
  }
}

TEST(Backend, KeysListsAllObjects) {
  auto cluster = make_cluster();
  populate_working_set(cluster, 3, 90);
  auto keys = cluster.keys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys,
            (std::vector<ObjectKey>{"object0", "object1", "object2"}));
}

TEST(Backend, OverwriteObjectReplacesChunks) {
  auto cluster = make_cluster(6, ec::CodecParams{4, 2});
  cluster.put_object("k", BytesView(deterministic_payload("v1", 400)));
  cluster.put_object("k", BytesView(deterministic_payload("v2", 800)));
  const ObjectInfo info = cluster.object_info("k");
  EXPECT_EQ(info.object_size, 800u);
  std::vector<ec::Chunk> chunks;
  for (ChunkIndex i = 0; i < 4; ++i) {
    const auto v = cluster.get_chunk({"k", i});
    ASSERT_TRUE(v.has_value());
    chunks.push_back(ec::Chunk{i, Bytes(v->begin(), v->end())});
  }
  EXPECT_EQ(cluster.codec().decode(800, chunks),
            deterministic_payload("v2", 800));
}

}  // namespace
}  // namespace agar::store
