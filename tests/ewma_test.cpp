// EWMA: the paper's popularity smoothing (alpha = 0.8).
#include "stats/ewma.hpp"

#include <gtest/gtest.h>

namespace agar::stats {
namespace {

TEST(Ewma, PaperExampleFirstIteration) {
  // §IV example: previous popularity 0, frequency 100, alpha 0.8 -> 80.
  Ewma e(0.8, 0.0);
  EXPECT_DOUBLE_EQ(e.update(100.0), 80.0);
}

TEST(Ewma, SecondIterationBlends) {
  Ewma e(0.8, 0.0);
  e.update(100.0);                        // 80
  EXPECT_DOUBLE_EQ(e.update(50.0), 56.0);  // 0.8*50 + 0.2*80
}

TEST(Ewma, AlphaOneTracksInstantly) {
  Ewma e(1.0, 5.0);
  EXPECT_DOUBLE_EQ(e.update(42.0), 42.0);
}

TEST(Ewma, AlphaZeroNeverMoves) {
  Ewma e(0.0, 7.0);
  EXPECT_DOUBLE_EQ(e.update(1000.0), 7.0);
}

TEST(Ewma, InvalidAlphaThrows) {
  EXPECT_THROW(Ewma(-0.1), std::invalid_argument);
  EXPECT_THROW(Ewma(1.1), std::invalid_argument);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.5, 0.0);
  for (int i = 0; i < 64; ++i) e.update(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-9);
}

TEST(Ewma, DecaysToZeroWithoutTraffic) {
  Ewma e(0.8, 100.0);
  for (int i = 0; i < 10; ++i) e.update(0.0);
  EXPECT_LT(e.value(), 0.001);
  EXPECT_GT(e.value(), 0.0);
}

TEST(Ewma, GeometricDecayRate) {
  // After n zero periods, value = initial * (1 - alpha)^n.
  Ewma e(0.8, 100.0);
  e.update(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 20.0);
  e.update(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 4.0);
}

TEST(Ewma, AccessorsReport) {
  Ewma e(0.3, 2.5);
  EXPECT_DOUBLE_EQ(e.alpha(), 0.3);
  EXPECT_DOUBLE_EQ(e.value(), 2.5);
}

}  // namespace
}  // namespace agar::stats
