// Planner registry: structural invariants every registered planner must
// satisfy (capacity, one option per key, no zero-value picks), optimality
// of knapsack-dp against the brute-force oracle, and the incremental
// planner's warm-start behavior.
#include "core/planner.hpp"

#include <gtest/gtest.h>

#include <set>

#include "api/registry.hpp"
#include "common/rng.hpp"

namespace agar::core {
namespace {

CachingOption opt(const ObjectKey& key, std::size_t weight, double value) {
  CachingOption o;
  o.key = key;
  o.weight = weight;
  o.weight_units = weight;
  o.value = value;
  for (std::size_t i = 0; i < weight; ++i) {
    o.chunks.push_back(static_cast<ChunkIndex>(i));
  }
  return o;
}

std::unique_ptr<Planner> make_planner(const std::string& name) {
  return api::PlannerRegistry::instance().create(name, api::PlannerContext{},
                                                 api::ParamMap{});
}

/// Small random instances every planner (including the exponential
/// brute-force oracle) can afford.
std::vector<std::vector<CachingOption>> random_instance(Rng& rng) {
  std::vector<std::vector<CachingOption>> groups;
  const std::size_t keys = 1 + rng.next_below(5);
  for (std::size_t key = 0; key < keys; ++key) {
    std::vector<CachingOption> group;
    const std::size_t options = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < options; ++i) {
      // Values include 0 so the "never select zero value" invariant is
      // actually exercised.
      group.push_back(opt("k" + std::to_string(key), 1 + rng.next_below(8),
                          static_cast<double>(rng.next_below(100))));
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

class PlannerInvariants : public ::testing::TestWithParam<std::string> {};

TEST_P(PlannerInvariants, RespectsCapacityOneOptionPerKeyNoZeroValue) {
  Rng rng(4242);
  for (int trial = 0; trial < 80; ++trial) {
    // A fresh planner per trial: stateful planners (incremental) must hold
    // the invariants on their first call too.
    auto planner = make_planner(GetParam());
    const auto groups = random_instance(rng);
    const std::size_t cap = rng.next_below(20);
    const auto r = planner->plan(groups, cap);

    EXPECT_LE(r.total_weight_units, cap) << GetParam();
    std::set<ObjectKey> keys;
    std::size_t units = 0;
    double value = 0.0;
    for (const auto& o : r.chosen) {
      EXPECT_TRUE(keys.insert(o.key).second)
          << GetParam() << ": duplicate key " << o.key;
      EXPECT_GT(o.value, 0.0) << GetParam() << ": zero-value option chosen";
      EXPECT_GT(o.weight_units, 0u) << GetParam();
      units += o.weight_units;
      value += o.value;
    }
    EXPECT_EQ(units, r.total_weight_units) << GetParam();
    EXPECT_DOUBLE_EQ(value, r.total_value) << GetParam();
  }
}

TEST_P(PlannerInvariants, WarmPlannerHoldsInvariantsAcrossRounds) {
  // Stateful planners re-plan against remembered state; the invariants
  // must survive drifting inputs and shrinking capacity.
  auto planner = make_planner(GetParam());
  Rng rng(777);
  std::vector<std::vector<CachingOption>> groups = random_instance(rng);
  for (int round = 0; round < 12; ++round) {
    const std::size_t cap = 2 + rng.next_below(18);
    for (auto& group : groups) {
      for (auto& o : group) {
        // +-20% drift plus occasional collapse to zero.
        const double f = 0.8 + 0.4 * (static_cast<double>(rng.next_below(100)) /
                                      100.0);
        o.value = rng.next_below(10) == 0 ? 0.0 : o.value * f;
      }
    }
    const auto r = planner->plan(groups, cap);
    EXPECT_LE(r.total_weight_units, cap) << GetParam() << " round " << round;
    std::set<ObjectKey> keys;
    for (const auto& o : r.chosen) {
      EXPECT_TRUE(keys.insert(o.key).second) << GetParam();
      EXPECT_GT(o.value, 0.0) << GetParam();
    }
  }
}

TEST_P(PlannerInvariants, NeverBeatsTheExactDp) {
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    auto planner = make_planner(GetParam());
    const auto groups = random_instance(rng);
    const std::size_t cap = 1 + rng.next_below(22);
    EXPECT_LE(planner->plan(groups, cap).total_value,
              solve_dp(groups, cap).total_value + 1e-9)
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registered, PlannerInvariants,
    ::testing::ValuesIn(api::PlannerRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(PlannerRegistry, DpMatchesBruteForceOracle) {
  auto dp = make_planner("knapsack-dp");
  auto oracle = make_planner("brute-force");
  Rng rng(2026);
  for (int trial = 0; trial < 120; ++trial) {
    const auto groups = random_instance(rng);
    const std::size_t cap = 1 + rng.next_below(25);
    EXPECT_DOUBLE_EQ(dp->plan(groups, cap).total_value,
                     oracle->plan(groups, cap).total_value)
        << "trial " << trial;
  }
}

TEST(PlannerRegistry, UnknownNameThrowsWithKnownNames) {
  try {
    (void)make_planner("simplex");
    FAIL() << "expected UnknownNameError";
  } catch (const api::UnknownNameError& e) {
    const auto& known = e.known_names();
    EXPECT_NE(std::find(known.begin(), known.end(), "knapsack-dp"),
              known.end());
    EXPECT_NE(std::find(known.begin(), known.end(), "incremental"),
              known.end());
  }
}

TEST(PlannerRegistry, EveryEntryIsDocumented) {
  const auto& planners = api::PlannerRegistry::instance();
  for (const auto& name : planners.names()) {
    const auto& entry = planners.at(name);
    EXPECT_FALSE(entry.description.empty()) << name;
    auto planner = planners.create(name, api::PlannerContext{},
                                   api::ParamMap{});
    EXPECT_EQ(planner->name(), name);
  }
}

TEST(IncrementalPlanner, FirstPlanMatchesTheExactDp) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    auto inc = make_planner("incremental");
    const auto groups = random_instance(rng);
    const std::size_t cap = 1 + rng.next_below(25);
    EXPECT_DOUBLE_EQ(inc->plan(groups, cap).total_value,
                     solve_dp(groups, cap).total_value)
        << "trial " << trial;
  }
}

TEST(IncrementalPlanner, StableInputsKeepTheConfiguration) {
  auto inc = make_planner("incremental");
  const std::vector<std::vector<CachingOption>> groups = {
      {opt("a", 1, 10.0), opt("a", 3, 18.0)},
      {opt("b", 2, 14.0)},
      {opt("c", 2, 1.0)},
  };
  const auto first = inc->plan(groups, 6);
  // Unchanged inputs: nothing is dirty, the previous choices carry over.
  const auto second = inc->plan(groups, 6);
  ASSERT_EQ(first.chosen.size(), second.chosen.size());
  for (std::size_t i = 0; i < first.chosen.size(); ++i) {
    EXPECT_EQ(first.chosen[i].key, second.chosen[i].key);
    EXPECT_EQ(first.chosen[i].weight_units, second.chosen[i].weight_units);
  }
  EXPECT_DOUBLE_EQ(first.total_value, second.total_value);
}

TEST(IncrementalPlanner, DirtyKeyIsReplanned) {
  auto inc = make_planner("incremental");
  std::vector<std::vector<CachingOption>> groups = {
      {opt("a", 1, 10.0)},
      {opt("b", 1, 1.0)},
  };
  const auto first = inc->plan(groups, 2);
  ASSERT_EQ(first.chosen.size(), 2u);

  // Key b collapses to zero value: it must be dropped at the next plan.
  groups[1][0].value = 0.0;
  const auto second = inc->plan(groups, 2);
  ASSERT_EQ(second.chosen.size(), 1u);
  EXPECT_EQ(second.chosen[0].key, "a");
}

TEST(IncrementalPlanner, SmallDriftDoesNotChurnLargeDriftDoes) {
  auto inc = api::PlannerRegistry::instance().create(
      "incremental", api::PlannerContext{},
      api::ParamMap{});  // default threshold 0.1
  std::vector<std::vector<CachingOption>> groups = {
      {opt("hot", 3, 100.0)},
      {opt("warm", 3, 50.0)},
      {opt("cold", 3, 10.0)},
  };
  const auto first = inc->plan(groups, 6);  // hot + warm fit
  ASSERT_EQ(first.chosen.size(), 2u);

  // 5% drift: below the threshold, the kept options simply refresh values.
  for (auto& g : groups) g[0].value *= 1.05;
  const auto drifted = inc->plan(groups, 6);
  ASSERT_EQ(drifted.chosen.size(), 2u);
  EXPECT_EQ(drifted.chosen[0].key, "hot");
  EXPECT_EQ(drifted.chosen[1].key, "warm");
  // Values track the fresh inputs even for kept keys.
  EXPECT_DOUBLE_EQ(drifted.chosen[0].value, 105.0);

  // The cold key surges past everything: it is dirty and gets planned in.
  groups[2][0].value = 1000.0;
  const auto surged = inc->plan(groups, 6);
  bool has_cold = false;
  for (const auto& o : surged.chosen) has_cold |= o.key == "cold";
  EXPECT_TRUE(has_cold);
}

TEST(IncrementalPlanner, SqueezedSurgeIsNotLockedInAtAFractionOfItsWorth) {
  // Regression: a surged key whose best option no longer fits the leftover
  // capacity must trigger a full re-plan, not be squeezed into a tiny
  // option and then remembered as "stable" at its huge signature forever.
  auto inc = make_planner("incremental");
  std::vector<std::vector<CachingOption>> groups = {
      {opt("a", 3, 100.0)},
      {opt("b", 3, 90.0)},
      {opt("surge", 1, 5.0), opt("surge", 5, 6.0)},
  };
  const auto first = inc->plan(groups, 7);  // a + b + surge@1
  EXPECT_EQ(first.chosen.size(), 3u);

  // The surge key explodes: its heavy option is now worth more than
  // everything else combined, but only 1 unit is left after a and b.
  groups[2] = {opt("surge", 1, 5.0), opt("surge", 5, 1000.0)};
  const auto second = inc->plan(groups, 7);
  double surge_value = 0.0;
  for (const auto& o : second.chosen) {
    if (o.key == "surge") surge_value = o.value;
  }
  EXPECT_DOUBLE_EQ(surge_value, 1000.0);
  EXPECT_DOUBLE_EQ(second.total_value,
                   solve_dp(groups, 7).total_value);

  // And it stays planned at full worth on subsequent stable rounds.
  const auto third = inc->plan(groups, 7);
  EXPECT_DOUBLE_EQ(third.total_value, second.total_value);
}

TEST(IncrementalPlanner, CapacityShrinkForcesAFullReplan) {
  auto inc = make_planner("incremental");
  const std::vector<std::vector<CachingOption>> groups = {
      {opt("a", 4, 40.0)},
      {opt("b", 4, 39.0)},
  };
  const auto first = inc->plan(groups, 8);
  EXPECT_EQ(first.chosen.size(), 2u);
  // Half the capacity: the kept set no longer fits; the planner must fall
  // back to a full plan and still respect the new capacity.
  const auto shrunk = inc->plan(groups, 4);
  EXPECT_LE(shrunk.total_weight_units, 4u);
  ASSERT_EQ(shrunk.chosen.size(), 1u);
  EXPECT_EQ(shrunk.chosen[0].key, "a");
}

TEST(GreedyPlanner, EqualDensityTieBreaksByKeyThenWeight) {
  // Four options, all density 1.0. Deterministic order must be by key then
  // weight regardless of input order.
  const std::vector<std::vector<CachingOption>> forward = {
      {opt("b", 2, 2.0)},
      {opt("a", 2, 2.0), opt("a", 1, 1.0)},
  };
  const std::vector<std::vector<CachingOption>> reversed = {
      {opt("a", 1, 1.0), opt("a", 2, 2.0)},
      {opt("b", 2, 2.0)},
  };
  const auto r1 = solve_greedy(forward, 3);
  const auto r2 = solve_greedy(reversed, 3);
  ASSERT_EQ(r1.chosen.size(), r2.chosen.size());
  // Same outcome both times: "a" wins the key tie, its lighter option wins
  // the weight tie (a@1), leaving room for b@2.
  for (std::size_t i = 0; i < r1.chosen.size(); ++i) {
    EXPECT_EQ(r1.chosen[i].key, r2.chosen[i].key);
    EXPECT_EQ(r1.chosen[i].weight_units, r2.chosen[i].weight_units);
  }
  EXPECT_DOUBLE_EQ(r1.total_value, r2.total_value);
}

}  // namespace
}  // namespace agar::core
