// Wire-framing tests for the agard protocol: encode/decode roundtrips plus
// the malformed-frame matrix — truncated, oversized, garbage and
// wrong-version frames must raise ProtocolError, never crash or misparse.
#include "daemon/protocol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace agar::daemon {
namespace {

std::vector<unsigned char> header_bytes(const std::string& frame) {
  return {frame.begin(), frame.begin() + kHeaderBytes};
}

TEST(DaemonProtocol, HeaderRoundtripAllTypes) {
  for (const MsgType type :
       {MsgType::kGet, MsgType::kMetrics, MsgType::kReload, MsgType::kPing,
        MsgType::kShutdown, MsgType::kRoutes, MsgType::kDrain,
        MsgType::kRepair, MsgType::kSpecOf}) {
    for (const bool is_reply : {false, true}) {
      const std::string frame = encode_frame(type, is_reply, "body");
      ASSERT_EQ(frame.size(), kHeaderBytes + 4);
      const auto bytes = header_bytes(frame);
      const FrameHeader header = decode_header(bytes.data(), bytes.size());
      EXPECT_EQ(header.type, type);
      EXPECT_EQ(header.is_reply, is_reply);
      EXPECT_EQ(header.body_len, 4u);
    }
  }
}

TEST(DaemonProtocol, TruncatedHeaderThrows) {
  const std::string frame = encode_frame(MsgType::kPing, false, "");
  for (std::size_t len = 0; len < kHeaderBytes; ++len) {
    const auto bytes = header_bytes(frame);
    EXPECT_THROW(decode_header(bytes.data(), len), ProtocolError)
        << "len=" << len;
  }
}

TEST(DaemonProtocol, BadMagicThrows) {
  std::string frame = encode_frame(MsgType::kPing, false, "");
  frame[0] = 'X';
  const auto bytes = header_bytes(frame);
  EXPECT_THROW(decode_header(bytes.data(), bytes.size()), ProtocolError);
}

TEST(DaemonProtocol, WrongVersionThrows) {
  std::string frame = encode_frame(MsgType::kPing, false, "");
  frame[4] = static_cast<char>(kVersion + 1);
  const auto bytes = header_bytes(frame);
  EXPECT_THROW(decode_header(bytes.data(), bytes.size()), ProtocolError);
}

TEST(DaemonProtocol, ReservedBytesMustBeZero) {
  std::string frame = encode_frame(MsgType::kPing, false, "");
  frame[6] = 1;
  auto bytes = header_bytes(frame);
  EXPECT_THROW(decode_header(bytes.data(), bytes.size()), ProtocolError);
  frame[6] = 0;
  frame[7] = 42;
  bytes = header_bytes(frame);
  EXPECT_THROW(decode_header(bytes.data(), bytes.size()), ProtocolError);
}

TEST(DaemonProtocol, UnknownTypeThrows) {
  std::string frame = encode_frame(MsgType::kPing, false, "");
  frame[5] = 0;  // below kGet
  auto bytes = header_bytes(frame);
  EXPECT_THROW(decode_header(bytes.data(), bytes.size()), ProtocolError);
  frame[5] = 99;  // above kSpecOf, reply bit clear
  bytes = header_bytes(frame);
  EXPECT_THROW(decode_header(bytes.data(), bytes.size()), ProtocolError);
}

TEST(DaemonProtocol, OversizedBodyLengthThrows) {
  std::string frame = encode_frame(MsgType::kGet, false, "");
  const std::uint32_t huge = kMaxBodyBytes + 1;
  frame[8] = static_cast<char>(huge & 0xFF);
  frame[9] = static_cast<char>((huge >> 8) & 0xFF);
  frame[10] = static_cast<char>((huge >> 16) & 0xFF);
  frame[11] = static_cast<char>((huge >> 24) & 0xFF);
  const auto bytes = header_bytes(frame);
  EXPECT_THROW(decode_header(bytes.data(), bytes.size()), ProtocolError);
}

TEST(DaemonProtocol, GarbageHeaderThrows) {
  // 12 bytes of noise: whatever the bytes, the outcome is an exception,
  // not UB. A fixed pattern keeps the test deterministic.
  unsigned char noise[kHeaderBytes];
  unsigned char x = 0xA5;
  for (auto& b : noise) {
    b = x;
    x = static_cast<unsigned char>(x * 31 + 7);
  }
  EXPECT_THROW(decode_header(noise, sizeof(noise)), ProtocolError);
}

TEST(DaemonProtocol, GetRequestRoundtrip) {
  const GetRequest request{"hot", "object42", true};
  const GetRequest decoded = decode_get_request(encode_get_request(request));
  EXPECT_EQ(decoded.tag, "hot");
  EXPECT_EQ(decoded.key, "object42");
  EXPECT_TRUE(decoded.want_payload);
}

TEST(DaemonProtocol, GetRequestEmptyKeyRejected) {
  EXPECT_THROW(decode_get_request(encode_get_request(GetRequest{"t", "", 0})),
               ProtocolError);
}

TEST(DaemonProtocol, GetRequestTruncationsThrow) {
  const std::string body =
      encode_get_request(GetRequest{"tag", "object7", false});
  // Every strict prefix must fail cleanly — the decoder may never read
  // past the buffer it was handed.
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_THROW(decode_get_request(body.substr(0, len)), ProtocolError)
        << "len=" << len;
  }
  // Trailing junk is as malformed as a truncation.
  EXPECT_THROW(decode_get_request(body + "x"), ProtocolError);
}

TEST(DaemonProtocol, GetResponseRoundtrip) {
  GetResponse response;
  response.status = Status::kOk;
  response.hit = HitKind::kPartial;
  response.degraded = true;
  response.route = 3;
  response.virtual_ms = 123.875;
  response.wall_us = 456789;
  response.payload = std::string("\x00\x01payload\xFF", 10);
  const GetResponse decoded =
      decode_get_response(encode_get_response(response));
  EXPECT_EQ(decoded.status, Status::kOk);
  EXPECT_EQ(decoded.hit, HitKind::kPartial);
  EXPECT_TRUE(decoded.degraded);
  EXPECT_EQ(decoded.route, 3u);
  EXPECT_DOUBLE_EQ(decoded.virtual_ms, 123.875);
  EXPECT_EQ(decoded.wall_us, 456789u);
  EXPECT_EQ(decoded.payload, response.payload);
}

TEST(DaemonProtocol, GetResponseTruncationsThrow) {
  GetResponse response;
  response.payload = "bytes";
  const std::string body = encode_get_response(response);
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_THROW(decode_get_response(body.substr(0, len)), ProtocolError)
        << "len=" << len;
  }
}

TEST(DaemonProtocol, ControlReplyRoundtrip) {
  const ControlReply reply{Status::kError, "boom: details"};
  const ControlReply decoded =
      decode_control_reply(encode_control_reply(reply));
  EXPECT_EQ(decoded.status, Status::kError);
  EXPECT_EQ(decoded.text, "boom: details");
}

TEST(DaemonProtocol, ControlReplyEmptyBodyThrows) {
  EXPECT_THROW(decode_control_reply(""), ProtocolError);
}

TEST(DaemonProtocol, StatusNamesCoverEveryValue) {
  for (const Status s :
       {Status::kOk, Status::kFailedRead, Status::kNoRoute,
        Status::kUnknownKey, Status::kBadRequest, Status::kError,
        Status::kShuttingDown}) {
    EXPECT_STRNE(to_string(s), "");
  }
}

}  // namespace
}  // namespace agar::daemon
