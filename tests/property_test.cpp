// Cross-module property tests: invariants that must hold for ANY cache
// engine, any option-generator input, any codec geometry, and for the
// simulation as a whole (determinism).
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "api/api.hpp"
#include "cache/static_cache.hpp"
#include "client/runner.hpp"
#include "common/rng.hpp"
#include "core/option_generator.hpp"
#include "store/repair.hpp"

namespace agar {
namespace {

// ---------------------------------------------------------------------------
// Cache-engine invariants, parameterized over (registered engine name,
// capacity) — every engine in the api registry is covered automatically,
// including ones added later (ARC proved this).

struct EngineParam {
  std::string name;
  std::size_t capacity;
};

std::ostream& operator<<(std::ostream& os, const EngineParam& p) {
  return os << p.name << "/" << p.capacity;
}

std::unique_ptr<cache::CacheEngine> make_engine(const EngineParam& p) {
  return api::EngineRegistry::instance().create(
      p.name, api::EngineContext{p.capacity}, api::ParamMap{});
}

std::vector<EngineParam> all_engine_params() {
  std::vector<EngineParam> out;
  for (const auto& name : api::EngineRegistry::instance().names()) {
    out.push_back(EngineParam{name, 256});
    out.push_back(EngineParam{name, 4096});
  }
  return out;
}

class EngineInvariants : public ::testing::TestWithParam<EngineParam> {};

TEST_P(EngineInvariants, CapacityNeverExceededUnderChurn) {
  auto engine = make_engine(GetParam());
  Rng rng(101);
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "k" + std::to_string(rng.next_below(97));
    if (rng.next_below(2) == 0) {
      engine->put(key, Bytes(1 + rng.next_below(61), 0xAA));
    } else {
      (void)engine->get(key);
    }
    ASSERT_LE(engine->used_bytes(), engine->capacity_bytes());
  }
}

TEST_P(EngineInvariants, UsedBytesMatchesResidentEntries) {
  auto engine = make_engine(GetParam());
  Rng rng(102);
  for (int i = 0; i < 1000; ++i) {
    engine->put("k" + std::to_string(rng.next_below(37)),
                Bytes(1 + rng.next_below(31), 1));
  }
  std::size_t total = 0;
  for (const auto& key : engine->keys()) {
    const auto v = engine->get(key);
    ASSERT_TRUE(v.has_value()) << key;
    total += v->size();
  }
  EXPECT_EQ(total, engine->used_bytes());
}

TEST_P(EngineInvariants, GetAfterPutReturnsLatestValue) {
  auto engine = make_engine(GetParam());
  engine->put("key", Bytes(10, 1));
  engine->put("key", Bytes(20, 2));
  const auto v = engine->get("key");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->size(), 20u);
  EXPECT_EQ((*v)[0], 2);
}

TEST_P(EngineInvariants, EraseThenGetMisses) {
  auto engine = make_engine(GetParam());
  engine->put("key", Bytes(10, 1));
  EXPECT_TRUE(engine->erase("key"));
  EXPECT_FALSE(engine->get("key").has_value());
  EXPECT_EQ(engine->used_bytes(), 0u);
}

TEST_P(EngineInvariants, ClearLeavesEmptyEngine) {
  auto engine = make_engine(GetParam());
  for (int i = 0; i < 20; ++i) {
    engine->put("k" + std::to_string(i), Bytes(8, 3));
  }
  engine->clear();
  EXPECT_TRUE(engine->keys().empty());
  EXPECT_EQ(engine->used_bytes(), 0u);
  // Still usable afterwards.
  engine->put("fresh", Bytes(8, 4));
  EXPECT_TRUE(engine->get("fresh").has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineInvariants, ::testing::ValuesIn(all_engine_params()),
    [](const ::testing::TestParamInfo<EngineParam>& param_info) {
      return param_info.param.name + "_" + std::to_string(param_info.param.capacity);
    });

// ---------------------------------------------------------------------------
// Option-generator invariants over randomized latency landscapes.

class OptionProperties : public ::testing::TestWithParam<int> {};

TEST_P(OptionProperties, InvariantsOnRandomLatencies) {
  Rng rng(500 + static_cast<std::uint64_t>(GetParam()));
  core::OptionGeneratorParams params;
  params.k = 9;
  params.m = 3;
  params.cache_latency_ms = 50.0;
  const core::OptionGenerator gen(params);

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<core::ChunkCost> costs;
    for (ChunkIndex i = 0; i < 12; ++i) {
      costs.push_back(core::ChunkCost{
          i, i % 6, 60.0 + static_cast<double>(rng.next_below(2000))});
    }
    const double pop = 1.0 + static_cast<double>(rng.next_below(100));
    const auto options = gen.generate("key", costs, pop);

    ASSERT_EQ(options.size(), 9u);
    double prev_value = -1.0;
    for (const auto& opt : options) {
      // Weight bookkeeping.
      ASSERT_EQ(opt.chunks.size(), opt.weight);
      // Chunk indices are distinct.
      std::set<ChunkIndex> unique(opt.chunks.begin(), opt.chunks.end());
      ASSERT_EQ(unique.size(), opt.chunks.size());
      // Values are non-negative and monotone non-decreasing in weight.
      ASSERT_GE(opt.value, 0.0);
      ASSERT_GE(opt.value, prev_value);
      prev_value = opt.value;
      // Options never exceed k chunks.
      ASSERT_LE(opt.weight, 9u);
    }
    // A bigger option's chunk set contains the smaller option's chunks
    // (most-distant-first nesting).
    for (std::size_t i = 1; i < options.size(); ++i) {
      for (const ChunkIndex c : options[i - 1].chunks) {
        ASSERT_NE(std::find(options[i].chunks.begin(),
                            options[i].chunks.end(), c),
                  options[i].chunks.end());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptionProperties, ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// End-to-end determinism: identical specs give bit-identical results for
// every runnable system — strategies AND engines running through the
// fixed-chunks adapter, straight from registry introspection.

class Determinism : public ::testing::TestWithParam<std::string> {};

TEST_P(Determinism, RepeatRunsAreIdentical) {
  api::ExperimentSpec spec;
  spec.experiment.deployment.num_objects = 25;
  spec.experiment.deployment.object_size_bytes = 9000;
  spec.experiment.deployment.seed = 31337;
  spec.experiment.ops_per_run = 150;
  spec.experiment.runs = 1;
  spec.experiment.reconfig_period_ms = 10'000.0;

  spec.system = GetParam();
  const auto& schema =
      api::StrategyRegistry::instance()
          .at(api::resolve_system(spec.system, spec.params).first)
          .schema;
  if (schema.has("chunks")) spec.params.set("chunks", "5");
  if (schema.has("cache_bytes")) spec.params.set("cache_bytes", "64KB");

  const auto a = api::run(spec).result;
  const auto b = api::run(spec).result;
  EXPECT_DOUBLE_EQ(a.mean_latency_ms(), b.mean_latency_ms());
  EXPECT_EQ(a.runs[0].full_hits, b.runs[0].full_hits);
  EXPECT_EQ(a.runs[0].partial_hits, b.runs[0].partial_hits);
  EXPECT_DOUBLE_EQ(a.percentile_ms(95), b.percentile_ms(95));
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, Determinism,
    ::testing::ValuesIn(api::runnable_systems()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Random damage + repair: for ANY damage pattern of <= m chunks per object,
// repair restores byte-identical content.

class RepairProperty : public ::testing::TestWithParam<int> {};

TEST_P(RepairProperty, RandomDamageUpToMIsAlwaysRepairable) {
  Rng rng(900 + static_cast<std::uint64_t>(GetParam()));
  store::BackendCluster backend(
      6, ec::CodecParams{9, 3},
      std::make_shared<ec::RoundRobinPlacement>(false));
  store::populate_working_set(backend, 4, 4500);

  for (int trial = 0; trial < 10; ++trial) {
    // Damage each object in a random pattern of 1..3 chunks.
    for (int obj = 0; obj < 4; ++obj) {
      const ObjectKey key = "object" + std::to_string(obj);
      const std::size_t losses = 1 + rng.next_below(3);
      std::set<ChunkIndex> dropped;
      while (dropped.size() < losses) {
        dropped.insert(static_cast<ChunkIndex>(rng.next_below(12)));
      }
      for (const ChunkIndex idx : dropped) {
        const RegionId region = backend.placement().region_of(key, idx, 6);
        backend.bucket(region).erase(ChunkId{key, idx});
      }
    }
    const store::RepairReport report = store::repair_all(backend);
    ASSERT_EQ(report.objects_unrecoverable, 0u);
    for (int obj = 0; obj < 4; ++obj) {
      const ObjectKey key = "object" + std::to_string(obj);
      ASSERT_TRUE(store::missing_chunks(backend, key).empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairProperty, ::testing::Range(0, 3));

}  // namespace
}  // namespace agar
