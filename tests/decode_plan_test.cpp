// Decode-plan cache: exhaustive sweep over every RS(9,3) erasure pattern —
// all C(12,9) = 220 ways to pick 9 surviving chunks — verifying
// byte-identical reconstruction, correct hit/miss accounting, and that the
// SIMD and portable kernel paths produce identical bytes end to end.
#include "ec/reed_solomon.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "common/rng.hpp"
#include "gf/gf256.hpp"

namespace agar::ec {
namespace {

constexpr std::size_t kK = 9;
constexpr std::size_t kM = 3;
constexpr std::size_t kTotal = kK + kM;

struct Stripe {
  std::vector<Bytes> chunks;  // k data followed by m parity
};

Stripe make_stripe(const ReedSolomon& rs, std::size_t chunk_size,
                   std::uint64_t seed) {
  Stripe s;
  Rng rng(seed);
  std::vector<BytesView> views;
  for (std::size_t i = 0; i < kK; ++i) {
    Bytes c(chunk_size);
    rng.fill_bytes(c.data(), c.size());
    s.chunks.push_back(std::move(c));
  }
  for (const auto& c : s.chunks) views.emplace_back(c);
  for (auto& p : rs.encode(views)) s.chunks.push_back(std::move(p));
  return s;
}

std::vector<std::uint32_t> mask_to_indices(unsigned mask) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < kTotal; ++i) {
    if (mask & (1u << i)) out.push_back(i);
  }
  return out;
}

TEST(DecodePlanCache, AllErasurePatternsReconstructAndCache) {
  const ReedSolomon rs(CodecParams{kK, kM});
  const Stripe stripe = make_stripe(rs, 333, 7);

  std::size_t patterns = 0;
  std::size_t inverting_patterns = 0;  // any pattern missing a data chunk
  for (unsigned mask = 0; mask < (1u << kTotal); ++mask) {
    if (std::popcount(mask) != static_cast<int>(kK)) continue;
    ++patterns;
    const auto indices = mask_to_indices(mask);
    const bool all_data = indices.back() < kK;
    if (!all_data) ++inverting_patterns;

    std::vector<std::pair<std::uint32_t, BytesView>> available;
    for (const auto i : indices) {
      available.emplace_back(i, BytesView(stripe.chunks[i]));
    }
    const auto out = rs.reconstruct_data(available);
    ASSERT_EQ(out.size(), kK);
    for (std::size_t d = 0; d < kK; ++d) {
      ASSERT_EQ(out[d], stripe.chunks[d]) << "mask=" << mask << " d=" << d;
    }
  }
  EXPECT_EQ(patterns, 220u);       // C(12,9)
  EXPECT_EQ(inverting_patterns, 219u);  // only {0..8} skips inversion

  // First sweep: every inverting pattern was a miss, none a hit; the
  // all-data fast path never consults the cache.
  EXPECT_EQ(rs.decode_plan_misses(), 219u);
  EXPECT_EQ(rs.decode_plan_hits(), 0u);
  EXPECT_EQ(rs.decode_plan_cache_size(), 219u);

  // Second sweep: all hits, no new plans, identical bytes.
  for (unsigned mask = 0; mask < (1u << kTotal); ++mask) {
    if (std::popcount(mask) != static_cast<int>(kK)) continue;
    std::vector<std::pair<std::uint32_t, BytesView>> available;
    for (const auto i : mask_to_indices(mask)) {
      available.emplace_back(i, BytesView(stripe.chunks[i]));
    }
    const auto out = rs.reconstruct_data(available);
    for (std::size_t d = 0; d < kK; ++d) {
      ASSERT_EQ(out[d], stripe.chunks[d]);
    }
  }
  EXPECT_EQ(rs.decode_plan_misses(), 219u);
  EXPECT_EQ(rs.decode_plan_hits(), 219u);
  EXPECT_EQ(rs.decode_plan_cache_size(), 219u);
}

TEST(DecodePlanCache, AvailableOrderDoesNotAffectPlanOrBytes) {
  const ReedSolomon rs(CodecParams{kK, kM});
  const Stripe stripe = make_stripe(rs, 128, 11);

  // Same surviving set handed over in two different orders must share one
  // cached plan and reconstruct identically.
  const std::vector<std::uint32_t> fwd = {1, 2, 3, 4, 5, 6, 7, 9, 11};
  std::vector<std::uint32_t> rev(fwd.rbegin(), fwd.rend());
  auto avail = [&](const std::vector<std::uint32_t>& order) {
    std::vector<std::pair<std::uint32_t, BytesView>> out;
    for (const auto i : order) {
      out.emplace_back(i, BytesView(stripe.chunks[i]));
    }
    return out;
  };
  const auto a = rs.reconstruct_data(avail(fwd));
  EXPECT_EQ(rs.decode_plan_misses(), 1u);
  const auto b = rs.reconstruct_data(avail(rev));
  EXPECT_EQ(rs.decode_plan_misses(), 1u);
  EXPECT_EQ(rs.decode_plan_hits(), 1u);
  EXPECT_EQ(a, b);
  for (std::size_t d = 0; d < kK; ++d) EXPECT_EQ(a[d], stripe.chunks[d]);
}

TEST(DecodePlanCache, ClearDropsPlans) {
  const ReedSolomon rs(CodecParams{kK, kM});
  const Stripe stripe = make_stripe(rs, 64, 13);
  std::vector<std::pair<std::uint32_t, BytesView>> available;
  for (std::uint32_t i = 1; i <= kK; ++i) {
    available.emplace_back(i, BytesView(stripe.chunks[i]));
  }
  (void)rs.reconstruct_data(available);
  EXPECT_EQ(rs.decode_plan_cache_size(), 1u);
  rs.clear_decode_plan_cache();
  EXPECT_EQ(rs.decode_plan_cache_size(), 0u);
  (void)rs.reconstruct_data(available);
  EXPECT_EQ(rs.decode_plan_misses(), 2u);
}

TEST(DecodePlanCache, BackendsProduceIdenticalEncodeAndDecode) {
  // SIMD and portable/scalar kernels must agree byte-for-byte through the
  // whole codec, for every erasure pattern.
  const ReedSolomon rs(CodecParams{kK, kM});
  Rng rng(17);
  std::vector<Bytes> data;
  std::vector<BytesView> views;
  for (std::size_t i = 0; i < kK; ++i) {
    Bytes c(257);  // odd size: every kernel exercises its tail path
    rng.fill_bytes(c.data(), c.size());
    data.push_back(std::move(c));
  }
  for (const auto& d : data) views.emplace_back(d);

  std::vector<std::vector<Bytes>> parities;
  std::vector<std::vector<std::vector<Bytes>>> decodes;
  for (const gf::Backend b : gf::supported_backends()) {
    ASSERT_TRUE(gf::set_backend(b));
    parities.push_back(rs.encode(views));

    std::vector<std::vector<Bytes>> per_pattern;
    std::vector<Bytes> all = data;
    for (auto& p : parities.back()) all.push_back(p);
    for (unsigned mask = 0; mask < (1u << kTotal); ++mask) {
      if (std::popcount(mask) != static_cast<int>(kK)) continue;
      std::vector<std::pair<std::uint32_t, BytesView>> available;
      for (const auto i : mask_to_indices(mask)) {
        available.emplace_back(i, BytesView(all[i]));
      }
      rs.clear_decode_plan_cache();  // force the full decode path each time
      per_pattern.push_back(rs.reconstruct_data(available));
    }
    decodes.push_back(std::move(per_pattern));
  }
  gf::reset_backend();

  for (std::size_t b = 1; b < parities.size(); ++b) {
    EXPECT_EQ(parities[b], parities[0]);
    EXPECT_EQ(decodes[b], decodes[0]);
  }
}

TEST(DecodePlanCache, ReconstructChunkUsesCacheToo) {
  const ReedSolomon rs(CodecParams{kK, kM});
  const Stripe stripe = make_stripe(rs, 100, 23);
  std::vector<std::pair<std::uint32_t, BytesView>> available;
  for (std::uint32_t i = 1; i < kK; ++i) {
    available.emplace_back(i, BytesView(stripe.chunks[i]));
  }
  available.emplace_back(10, BytesView(stripe.chunks[10]));

  const Bytes rebuilt0 = rs.reconstruct_chunk(0, available);
  EXPECT_EQ(rebuilt0, stripe.chunks[0]);
  const Bytes rebuilt11 = rs.reconstruct_chunk(11, available);
  EXPECT_EQ(rebuilt11, stripe.chunks[11]);
  EXPECT_EQ(rs.decode_plan_misses(), 1u);
  EXPECT_EQ(rs.decode_plan_hits(), 1u);
}

}  // namespace
}  // namespace agar::ec
