// Agar's static-configuration cache: admission gating and reconfiguration.
#include "cache/static_cache.hpp"

#include <gtest/gtest.h>

namespace agar::cache {
namespace {

Bytes val(std::size_t n) { return Bytes(n, 0x77); }

TEST(StaticCache, RejectsUnconfiguredKeys) {
  StaticConfigCache c(100);
  EXPECT_FALSE(c.put("a", val(10)));
  EXPECT_EQ(c.stats().rejections, 1u);
  c.install_configuration({"a"});
  EXPECT_TRUE(c.put("a", val(10)));
}

TEST(StaticCache, GetServesOnlyPopulatedEntries) {
  StaticConfigCache c(100);
  c.install_configuration({"a", "b"});
  c.put("a", val(10));
  EXPECT_TRUE(c.get("a").has_value());
  // "b" is configured but nobody populated it yet.
  EXPECT_FALSE(c.get("b").has_value());
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(StaticCache, ReconfigurationEvictsDroppedKeys) {
  StaticConfigCache c(100);
  c.install_configuration({"a", "b"});
  c.put("a", val(10));
  c.put("b", val(10));
  c.install_configuration({"b", "c"});
  EXPECT_FALSE(c.contains("a"));
  EXPECT_TRUE(c.contains("b"));
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_EQ(c.used_bytes(), 10u);
}

TEST(StaticCache, ReconfigurationKeepsSurvivors) {
  StaticConfigCache c(100);
  c.install_configuration({"x"});
  c.put("x", val(42));
  c.install_configuration({"x", "y"});
  const auto v = c.get("x");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->size(), 42u);
}

TEST(StaticCache, IsConfiguredReflectsCurrentSet) {
  StaticConfigCache c(100);
  c.install_configuration({"a"});
  EXPECT_TRUE(c.is_configured("a"));
  EXPECT_FALSE(c.is_configured("b"));
  EXPECT_EQ(c.configured_size(), 1u);
}

TEST(StaticCache, CapacityIsRespected) {
  StaticConfigCache c(25);
  c.install_configuration({"a", "b", "c"});
  EXPECT_TRUE(c.put("a", val(10)));
  EXPECT_TRUE(c.put("b", val(10)));
  // Would exceed capacity; declined rather than evicting a sibling.
  EXPECT_FALSE(c.put("c", val(10)));
  EXPECT_EQ(c.used_bytes(), 20u);
}

TEST(StaticCache, OversizedValueRejected) {
  StaticConfigCache c(10);
  c.install_configuration({"a"});
  EXPECT_FALSE(c.put("a", val(11)));
}

TEST(StaticCache, OverwriteConfiguredKeyUpdatesBytes) {
  StaticConfigCache c(100);
  c.install_configuration({"a"});
  c.put("a", val(10));
  c.put("a", val(30));
  EXPECT_EQ(c.used_bytes(), 30u);
}

TEST(StaticCache, EraseAndClear) {
  StaticConfigCache c(100);
  c.install_configuration({"a", "b"});
  c.put("a", val(10));
  c.put("b", val(10));
  EXPECT_TRUE(c.erase("a"));
  EXPECT_EQ(c.used_bytes(), 10u);
  c.clear();
  EXPECT_EQ(c.used_bytes(), 0u);
  // Configuration survives clear; entries do not.
  EXPECT_TRUE(c.is_configured("b"));
  EXPECT_FALSE(c.contains("b"));
}

TEST(StaticCache, ReconfigurationCountIncrements) {
  StaticConfigCache c(100);
  EXPECT_EQ(c.reconfigurations(), 0u);
  c.install_configuration({});
  c.install_configuration({"a"});
  EXPECT_EQ(c.reconfigurations(), 2u);
}

TEST(StaticCache, EmptyConfigurationEvictsEverything) {
  StaticConfigCache c(100);
  c.install_configuration({"a", "b"});
  c.put("a", val(10));
  c.put("b", val(10));
  c.install_configuration({});
  EXPECT_EQ(c.used_bytes(), 0u);
  EXPECT_TRUE(c.keys().empty());
}

TEST(StaticCache, HitMissStats) {
  StaticConfigCache c(100);
  c.install_configuration({"a"});
  c.put("a", val(5));
  (void)c.get("a");
  (void)c.get("a");
  (void)c.get("zzz");
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

}  // namespace
}  // namespace agar::cache
