// Cooperative cache tier, end to end: spec surface, peer-fetch traffic,
// Paxos config appends, partition semantics, stale-config accounting, and
// the collab=none inertness guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "api/api.hpp"
#include "client/report.hpp"

namespace agar {
namespace {

/// Skewed multi-region spec where peer caches are worth consulting:
/// frankfurt/dublin/virginia sit within the 400 ms peer threshold of each
/// other while most chunk homes are farther away.
api::ExperimentSpec collab_spec() {
  api::ExperimentSpec spec;
  spec.system = "agar";
  spec.experiment.deployment.num_objects = 25;
  spec.experiment.deployment.object_size_bytes = 9000;
  spec.experiment.deployment.seed = 4242;
  spec.experiment.ops_per_run = 400;
  spec.experiment.runs = 1;
  spec.experiment.num_clients = 2;
  spec.experiment.reconfig_period_ms = 8'000.0;
  spec.set("regions", "frankfurt,dublin,virginia");
  spec.set("workload", "zipf:1.2");
  spec.params.set("cache_bytes", "64KB");
  spec.set("collab", "broadcast");
  spec.set("collab.period_s", "2");
  return spec;
}

TEST(CollabSpec, RegistryListsTiers) {
  const auto names = api::CollabRegistry::instance().names();
  EXPECT_NE(std::find(names.begin(), names.end(), "none"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "broadcast"), names.end());
}

TEST(CollabSpec, RoundTripsAndElidesDefault) {
  api::ExperimentSpec spec;
  spec.set("collab", "broadcast");
  spec.set("collab.period_s", "2");
  const std::string json = spec.to_json();
  EXPECT_NE(json.find("\"collab\": \"broadcast\""), std::string::npos);
  EXPECT_NE(json.find("\"collab.period_s\""), std::string::npos);
  EXPECT_NE(spec.label().find("+collab"), std::string::npos);
  // The default tier stays out of JSON and labels so every pre-collab
  // golden remains byte-identical.
  EXPECT_EQ(api::ExperimentSpec{}.to_json().find("collab"), std::string::npos);
  EXPECT_EQ(api::ExperimentSpec{}.label().find("collab"), std::string::npos);
}

TEST(CollabSpec, RejectsUnknownTierAndParams) {
  api::ExperimentSpec unknown;
  unknown.set("collab", "gossip");
  EXPECT_THROW(unknown.validate(), std::exception);

  api::ExperimentSpec bad_param;
  bad_param.set("collab", "broadcast");
  bad_param.set("collab.bogus", "1");
  EXPECT_THROW(bad_param.validate(), std::exception);
}

TEST(CollabSpec, GlobalPlannerScopeRequiresBroadcast) {
  api::ExperimentSpec local;
  local.set("planner.scope", "global");
  EXPECT_THROW(local.validate(), std::invalid_argument);

  api::ExperimentSpec global = collab_spec();
  global.set("planner.scope", "global");
  EXPECT_NO_THROW(global.validate());
}

TEST(CollabRun, BroadcastTierProducesPeerTraffic) {
  const auto result = api::run(collab_spec()).result;
  ASSERT_FALSE(result.runs.empty());
  const auto& run = result.runs[0];
  ASSERT_TRUE(run.collab_active);
  EXPECT_GT(run.collab_peer_hits, 0u);
  EXPECT_GT(run.collab_bytes_from_peers, 0u);
  EXPECT_GT(run.collab_bytes_from_backend, 0u);
  EXPECT_GT(run.paxos_appends, 0u);
  EXPECT_GT(run.config_epochs, 0u);
  EXPECT_GE(run.config_overlap, 0.0);
  EXPECT_LE(run.config_overlap, 1.0);
  EXPECT_GT(run.paxos_append_p50_ms, 0.0);
  EXPECT_GE(run.paxos_append_p99_ms, run.paxos_append_p50_ms);
}

TEST(CollabRun, PartitionCutsPeersButNotBackend) {
  // Two client regions split from t=0: no peer is ever reachable, appends
  // from the non-leader lane fail locally, yet every read still completes
  // against the (untouched) backend.
  auto spec = collab_spec();
  spec.set("regions", "frankfurt,dublin");
  spec.set("scenario", "0 partition_regions regions=frankfurt");
  const auto result = api::run(spec).result;
  ASSERT_FALSE(result.runs.empty());
  const auto& run = result.runs[0];
  ASSERT_TRUE(run.collab_active);
  EXPECT_EQ(run.collab_peer_hits, 0u);
  EXPECT_EQ(run.collab_bytes_from_peers, 0u);
  EXPECT_GT(run.paxos_append_failures, 0u);
  EXPECT_GT(run.ops, 0u);
  EXPECT_EQ(run.failed_reads, 0u);
}

TEST(CollabRun, HealRestoresPeerTraffic) {
  auto spec = collab_spec();
  spec.set("scenario",
           "0 partition_regions regions=frankfurt; 3000 heal_partition");
  const auto result = api::run(spec).result;
  ASSERT_FALSE(result.runs.empty());
  EXPECT_GT(result.runs[0].collab_peer_hits, 0u);
}

TEST(CollabRun, SlowApplyCountsStaleConfigReads) {
  auto spec = collab_spec();
  spec.set("collab.apply_ms", "5000");
  const auto result = api::run(spec).result;
  ASSERT_FALSE(result.runs.empty());
  EXPECT_GT(result.runs[0].stale_config_reads, 0u);
}

TEST(CollabRun, NoneTierStaysInert) {
  auto spec = collab_spec();
  spec.set("collab", "none");
  spec.set("collab.period_s", "");  // "key=" clears a namespaced param
  const auto result = api::run(spec).result;
  ASSERT_FALSE(result.runs.empty());
  EXPECT_FALSE(result.runs[0].collab_active);
  // Not a single "collab" byte in the report: pre-collab goldens cannot
  // drift.
  EXPECT_EQ(client::results_json({result}).find("collab"), std::string::npos);
}

}  // namespace
}  // namespace agar
