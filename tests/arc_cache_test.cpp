// ARC engine: recency/frequency promotion, ghost-driven adaptation of the
// T1 target, capacity and directory bounds, and engine-registry wiring.
// (The generic engine invariants in property_test cover ARC automatically
// through the registry; these tests pin the ARC-specific behaviour.)
#include "cache/arc_cache.hpp"

#include <gtest/gtest.h>

#include "api/registry.hpp"

namespace agar::cache {
namespace {

Bytes value(std::size_t n, std::uint8_t fill = 0xAB) {
  return Bytes(n, fill);
}

TEST(ArcCache, BasicPutGetErase) {
  ArcCache cache(1024);
  EXPECT_TRUE(cache.put("a", value(100)));
  EXPECT_TRUE(cache.contains("a"));
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size(), 100u);
  EXPECT_EQ(cache.used_bytes(), 100u);
  EXPECT_TRUE(cache.erase("a"));
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(ArcCache, RepeatAccessPromotesToFrequencySide) {
  ArcCache cache(1000);
  cache.put("once", value(100));
  cache.put("twice", value(100));
  (void)cache.get("twice");  // promoted to T2
  EXPECT_EQ(cache.t1_bytes(), 100u);  // "once"
  EXPECT_EQ(cache.t2_bytes(), 100u);  // "twice"
}

TEST(ArcCache, OneHitWondersCannotFlushFrequentEntries) {
  // A hot entry re-accessed repeatedly must survive a stream of scan-like
  // one-time keys that exceeds the cache size many times over.
  ArcCache cache(1000);
  cache.put("hot", value(100));
  (void)cache.get("hot");
  for (int i = 0; i < 100; ++i) {
    cache.put("scan" + std::to_string(i), value(100));
    (void)cache.get("hot");  // keeps its frequency fresh
  }
  EXPECT_TRUE(cache.contains("hot"));
}

TEST(ArcCache, GhostHitGrowsRecencyTarget) {
  ArcCache cache(300);
  cache.put("a", value(100));
  (void)cache.get("a");  // a -> T2, so T1 stays below capacity
  cache.put("b", value(100));
  cache.put("c", value(100));
  cache.put("d", value(100));  // evicts "b" (T1 LRU) to the B1 ghost list
  EXPECT_FALSE(cache.contains("b"));
  const std::size_t before = cache.target_t1_bytes();
  // Re-inserting the ghost is the signal "T1 was too small".
  cache.put("b", value(100));
  EXPECT_GT(cache.target_t1_bytes(), before);
  EXPECT_TRUE(cache.contains("b"));
}

TEST(ArcCache, CapacityNeverExceededAndDirectoryBounded) {
  ArcCache cache(500);
  for (int i = 0; i < 300; ++i) {
    cache.put("k" + std::to_string(i % 60), value(30 + (i % 5) * 10));
    (void)cache.get("k" + std::to_string((i * 7) % 60));
    ASSERT_LE(cache.used_bytes(), cache.capacity_bytes());
    // Ghost directory bounded by ~2x capacity.
    ASSERT_LE(cache.used_bytes() + cache.ghost_bytes(),
              2 * cache.capacity_bytes() + 100);
  }
}

TEST(ArcCache, OversizedValueRejected) {
  ArcCache cache(100);
  EXPECT_FALSE(cache.put("big", value(200)));
  EXPECT_EQ(cache.stats().rejections, 1u);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(ArcCache, OverwriteUpdatesBytesAndValue) {
  ArcCache cache(1000);
  cache.put("k", value(100, 1));
  cache.put("k", value(300, 2));
  const auto hit = cache.get("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size(), 300u);
  EXPECT_EQ((*hit)[0], 2);
  EXPECT_EQ(cache.used_bytes(), 300u);
}

TEST(ArcCache, ClearResetsEverything) {
  ArcCache cache(500);
  for (int i = 0; i < 20; ++i) {
    cache.put("k" + std::to_string(i), value(50));
  }
  cache.clear();
  EXPECT_TRUE(cache.keys().empty());
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_EQ(cache.ghost_bytes(), 0u);
  EXPECT_EQ(cache.target_t1_bytes(), 0u);
  cache.put("fresh", value(50));
  EXPECT_TRUE(cache.get("fresh").has_value());
}

TEST(ArcCache, RegisteredAsEngineOnly) {
  // The openness proof: ARC exists in the engine registry (its .cpp is its
  // ONLY wiring) and runs as a system via the fixed-chunks fallback — it
  // must NOT need a strategy registration of its own.
  EXPECT_TRUE(api::EngineRegistry::instance().contains("arc"));
  EXPECT_FALSE(api::StrategyRegistry::instance().contains("arc"));
  const auto engine = api::EngineRegistry::instance().create(
      "arc", api::EngineContext{2048}, api::ParamMap{});
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->capacity_bytes(), 2048u);
  EXPECT_NE(dynamic_cast<ArcCache*>(engine.get()), nullptr);
}

}  // namespace
}  // namespace agar::cache
