// Region manager: latency probing and chunk-cost resolution.
#include "core/region_manager.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace agar::core {
namespace {

class RegionManagerTest : public ::testing::Test {
 protected:
  RegionManagerTest()
      : topology_(sim::aws_six_regions()),
        network_(sim::LatencyModel(&topology_, {}, 1234)),
        backend_(6, ec::CodecParams{9, 3},
                 std::make_shared<ec::RoundRobinPlacement>(false)) {
    backend_.register_object("obj", 1_MB);
  }

  RegionManager make(RegionId local) {
    RegionManagerParams p;
    p.local_region = local;
    return RegionManager(&backend_, &network_, p);
  }

  sim::Topology topology_;
  sim::Network network_;
  store::BackendCluster backend_;
};

TEST_F(RegionManagerTest, NullDependenciesThrow) {
  RegionManagerParams p;
  EXPECT_THROW(RegionManager(nullptr, &network_, p), std::invalid_argument);
  EXPECT_THROW(RegionManager(&backend_, nullptr, p), std::invalid_argument);
  p.local_region = 99;
  EXPECT_THROW(RegionManager(&backend_, &network_, p), std::invalid_argument);
}

TEST_F(RegionManagerTest, UnprobedEstimatesAreInfinite) {
  auto rm = make(sim::region::kFrankfurt);
  EXPECT_TRUE(std::isinf(rm.estimate_ms(sim::region::kSydney)));
}

TEST_F(RegionManagerTest, ProbeSamplesEveryRegion) {
  auto rm = make(sim::region::kFrankfurt);
  rm.probe();
  EXPECT_EQ(rm.probe_rounds(), 1u);
  for (RegionId r = 0; r < 6; ++r) {
    EXPECT_TRUE(rm.estimator().has_sample(r)) << r;
    EXPECT_EQ(rm.estimator().samples(r), 6u);  // probes_per_region default
  }
}

TEST_F(RegionManagerTest, EstimatesTrackTopologyOrdering) {
  auto rm = make(sim::region::kFrankfurt);
  rm.probe();
  rm.probe();
  // With ±10% jitter the widely separated base latencies keep their order.
  EXPECT_LT(rm.estimate_ms(sim::region::kFrankfurt),
            rm.estimate_ms(sim::region::kDublin));
  EXPECT_LT(rm.estimate_ms(sim::region::kDublin),
            rm.estimate_ms(sim::region::kVirginia));
  EXPECT_LT(rm.estimate_ms(sim::region::kVirginia),
            rm.estimate_ms(sim::region::kSaoPaulo));
}

TEST_F(RegionManagerTest, EstimateNearBaseLatency) {
  auto rm = make(sim::region::kFrankfurt);
  for (int i = 0; i < 20; ++i) rm.probe();
  const double base =
      topology_.base_latency_ms(sim::region::kFrankfurt, sim::region::kTokyo);
  EXPECT_NEAR(rm.estimate_ms(sim::region::kTokyo), base, base * 0.15);
}

TEST_F(RegionManagerTest, DownRegionsAreSkipped) {
  auto rm = make(sim::region::kFrankfurt);
  network_.fail_region(sim::region::kSydney);
  rm.probe();
  EXPECT_FALSE(rm.estimator().has_sample(sim::region::kSydney));
  EXPECT_TRUE(rm.estimator().has_sample(sim::region::kTokyo));
}

TEST_F(RegionManagerTest, ChunkCostsCoverWholeStripe) {
  auto rm = make(sim::region::kFrankfurt);
  rm.probe();
  const auto costs = rm.chunk_costs("obj");
  ASSERT_EQ(costs.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(costs[i].index, i);
    EXPECT_EQ(costs[i].region, i % 6);
    EXPECT_DOUBLE_EQ(costs[i].latency_ms,
                     rm.estimate_ms(static_cast<RegionId>(i % 6)));
  }
}

TEST_F(RegionManagerTest, RegionOfDelegatesToPlacement) {
  auto rm = make(sim::region::kFrankfurt);
  EXPECT_EQ(rm.region_of("obj", 0), 0u);
  EXPECT_EQ(rm.region_of("obj", 7), 1u);
}

TEST_F(RegionManagerTest, LocalRegionPerspectiveMatters) {
  auto fra = make(sim::region::kFrankfurt);
  auto syd = make(sim::region::kSydney);
  for (int i = 0; i < 10; ++i) {
    fra.probe();
    syd.probe();
  }
  // Dublin is close to Frankfurt but far from Sydney.
  EXPECT_LT(fra.estimate_ms(sim::region::kDublin),
            syd.estimate_ms(sim::region::kDublin));
}

}  // namespace
}  // namespace agar::core
