// Matrix algebra over GF(256): inversion, multiplication, and the MDS
// property of the Vandermonde/Cauchy encoding matrices.
#include "ec/matrix.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "gf/gf256.hpp"

namespace agar::ec {
namespace {

Matrix random_matrix(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m.at(i, j) = static_cast<std::uint8_t>(rng.next_below(256));
    }
  }
  return m;
}

TEST(Matrix, IdentityTimesAnythingIsAnything) {
  Rng rng(1);
  const Matrix a = random_matrix(5, rng);
  EXPECT_EQ(Matrix::identity(5).multiply(a), a);
  EXPECT_EQ(a.multiply(Matrix::identity(5)), a);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW((void)a.multiply(b), std::invalid_argument);
}

TEST(Matrix, InvertIdentity) {
  EXPECT_EQ(Matrix::identity(4).inverted(), Matrix::identity(4));
}

TEST(Matrix, InvertNonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW((void)a.inverted(), std::invalid_argument);
}

TEST(Matrix, InvertSingularThrows) {
  // Two identical rows.
  Matrix a{{1, 2}, {1, 2}};
  EXPECT_THROW((void)a.inverted(), std::domain_error);
}

TEST(Matrix, InvertZeroMatrixThrows) {
  Matrix a(3, 3);
  EXPECT_THROW((void)a.inverted(), std::domain_error);
}

TEST(Matrix, KnownInverse2x2) {
  // For [[1,1],[1,2]] over GF(256): det = 2 - 1 = 3 (in GF: 1*2 ^ 1*1 = 3).
  const Matrix a{{1, 1}, {1, 2}};
  const Matrix inv = a.inverted();
  EXPECT_TRUE(a.multiply(inv).is_identity());
  EXPECT_TRUE(inv.multiply(a).is_identity());
}

TEST(Matrix, RandomInvertRoundTrip) {
  Rng rng(7);
  int inverted_count = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const Matrix a = random_matrix(6, rng);
    Matrix inv;
    try {
      inv = a.inverted();
    } catch (const std::domain_error&) {
      continue;  // singular draw; rare but possible
    }
    ++inverted_count;
    EXPECT_TRUE(a.multiply(inv).is_identity());
    EXPECT_TRUE(inv.multiply(a).is_identity());
  }
  // Random matrices over GF(256) are invertible with probability ~0.996.
  EXPECT_GT(inverted_count, 40);
}

TEST(Matrix, SubRows) {
  const Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const Matrix sub = a.sub_rows(1, 2);
  EXPECT_EQ(sub, (Matrix{{3, 4}, {5, 6}}));
}

TEST(Matrix, SubRowsOutOfRangeThrows) {
  const Matrix a(2, 2);
  EXPECT_THROW((void)a.sub_rows(1, 2), std::out_of_range);
}

TEST(Matrix, SelectRows) {
  const Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const Matrix sel = a.select_rows({2, 0});
  EXPECT_EQ(sel, (Matrix{{5, 6}, {1, 2}}));
}

TEST(Matrix, SelectRowsOutOfRangeThrows) {
  const Matrix a(2, 2);
  EXPECT_THROW((void)a.select_rows({0, 5}), std::out_of_range);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, VandermondeShape) {
  const Matrix v = vandermonde(12, 9);
  EXPECT_EQ(v.rows(), 12u);
  EXPECT_EQ(v.cols(), 9u);
  // Row 0 is [1, 0, 0, ...]: pow(0,0)=1, pow(0,c)=0.
  EXPECT_EQ(v.at(0, 0), 1);
  for (std::size_t c = 1; c < 9; ++c) EXPECT_EQ(v.at(0, c), 0);
  // Row 1 is all ones: pow(1,c)=1.
  for (std::size_t c = 0; c < 9; ++c) EXPECT_EQ(v.at(1, c), 1);
}

TEST(Matrix, SystematicVandermondeTopIsIdentity) {
  const Matrix s = systematic_vandermonde(9, 3);
  EXPECT_TRUE(s.sub_rows(0, 9).is_identity());
  EXPECT_EQ(s.rows(), 12u);
}

TEST(Matrix, SystematicCauchyTopIsIdentity) {
  const Matrix s = systematic_cauchy(9, 3);
  EXPECT_TRUE(s.sub_rows(0, 9).is_identity());
  EXPECT_EQ(s.rows(), 12u);
}

TEST(Matrix, CauchyTooLargeThrows) {
  EXPECT_THROW((void)cauchy(200, 100), std::invalid_argument);
}

// The MDS property: ANY k rows of the systematic (k+m) x k matrix must be
// invertible. Exhaustively check all C(k+m, k) row subsets for small codes
// and both constructions.
class MdsProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

void check_all_subsets(const Matrix& mat, std::size_t k, std::size_t total) {
  std::vector<std::size_t> pick(k);
  std::iota(pick.begin(), pick.end(), 0);
  while (true) {
    EXPECT_NO_THROW((void)mat.select_rows(pick).inverted())
        << "subset starting with row " << pick[0];
    // Next combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (pick[i] != i + total - k) {
        ++pick[i];
        for (std::size_t j = i + 1; j < k; ++j) pick[j] = pick[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
  }
}

TEST_P(MdsProperty, AnyKRowsInvertibleCauchy) {
  const auto [k, m] = GetParam();
  const Matrix s = systematic_cauchy(static_cast<std::size_t>(k),
                                     static_cast<std::size_t>(m));
  check_all_subsets(s, static_cast<std::size_t>(k),
                    static_cast<std::size_t>(k + m));
}

TEST_P(MdsProperty, AnyKRowsInvertibleVandermonde) {
  const auto [k, m] = GetParam();
  const Matrix s = systematic_vandermonde(static_cast<std::size_t>(k),
                                          static_cast<std::size_t>(m));
  check_all_subsets(s, static_cast<std::size_t>(k),
                    static_cast<std::size_t>(k + m));
}

INSTANTIATE_TEST_SUITE_P(
    SmallCodes, MdsProperty,
    ::testing::Values(std::make_tuple(2, 1), std::make_tuple(2, 2),
                      std::make_tuple(3, 2), std::make_tuple(4, 2),
                      std::make_tuple(4, 3), std::make_tuple(5, 3),
                      std::make_tuple(6, 3), std::make_tuple(9, 3)));

}  // namespace
}  // namespace agar::ec
