// TinyLFU admission extension: frequency duels and sketch behaviour.
#include "cache/tinylfu_cache.hpp"

#include <gtest/gtest.h>

namespace agar::cache {
namespace {

Bytes val(std::size_t n) { return Bytes(n, 0x5A); }

TEST(TinyLfuCache, BasicPutGet) {
  TinyLfuCache c(100);
  EXPECT_TRUE(c.put("a", val(10)));
  EXPECT_TRUE(c.get("a").has_value());
  EXPECT_FALSE(c.get("b").has_value());
}

TEST(TinyLfuCache, ColdCandidateCannotDisplacePopularVictim) {
  TinyLfuCache c(20);
  c.put("hot", val(20));
  for (int i = 0; i < 50; ++i) (void)c.get("hot");
  // "cold" has sketch estimate 0 < hot's; admission declines.
  EXPECT_FALSE(c.put("cold", val(20)));
  EXPECT_TRUE(c.contains("hot"));
}

TEST(TinyLfuCache, PopularCandidateWinsDuel) {
  TinyLfuCache c(20);
  c.put("old", val(20));
  // Make "new" popular through gets (misses still record in the sketch).
  for (int i = 0; i < 50; ++i) (void)c.get("new");
  EXPECT_TRUE(c.put("new", val(20)));
  EXPECT_TRUE(c.contains("new"));
  EXPECT_FALSE(c.contains("old"));
}

TEST(TinyLfuCache, ResidentKeyAlwaysUpdatable) {
  TinyLfuCache c(30);
  c.put("a", val(10));
  EXPECT_TRUE(c.put("a", val(20)));  // no duel for residents
  EXPECT_EQ(c.used_bytes(), 20u);
}

TEST(TinyLfuCache, NoEvictionNeededNoDuel) {
  TinyLfuCache c(100);
  c.put("a", val(10));
  for (int i = 0; i < 50; ++i) (void)c.get("a");
  // Plenty of space: "b" admitted without displacing anyone.
  EXPECT_TRUE(c.put("b", val(10)));
}

TEST(TinyLfuCache, OversizedRejected) {
  TinyLfuCache c(10);
  EXPECT_FALSE(c.put("big", val(11)));
}

TEST(TinyLfuCache, CapacityInvariant) {
  TinyLfuCache c(100);
  for (int i = 0; i < 1000; ++i) {
    const std::string k = "k" + std::to_string(i % 37);
    (void)c.get(k);
    c.put(k, val(1 + i % 23));
    ASSERT_LE(c.used_bytes(), 100u);
  }
}

TEST(TinyLfuCache, EraseAndClear) {
  TinyLfuCache c(100);
  c.put("a", val(10));
  EXPECT_TRUE(c.erase("a"));
  EXPECT_FALSE(c.erase("a"));
  c.put("b", val(10));
  c.clear();
  EXPECT_EQ(c.used_bytes(), 0u);
  EXPECT_TRUE(c.keys().empty());
}

TEST(TinyLfuCache, SketchRecordsAccesses) {
  TinyLfuCache c(100);
  for (int i = 0; i < 10; ++i) (void)c.get("watched");
  EXPECT_GE(c.sketch().estimate("watched"), 10u);
}

TEST(TinyLfuCache, AgingHalvesEstimates) {
  TinyLfuParams p;
  p.aging_window = 100;
  TinyLfuCache c(100, p);
  for (int i = 0; i < 50; ++i) (void)c.get("a");
  const auto before = c.sketch().estimate("a");
  // Trigger aging with other traffic.
  for (int i = 0; i < 100; ++i) (void)c.get("filler" + std::to_string(i));
  EXPECT_LT(c.sketch().estimate("a"), before);
}

}  // namespace
}  // namespace agar::cache
