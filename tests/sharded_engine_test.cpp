// Sharded engine: window protocol, cross-shard rings, and the core
// guarantee — byte-identical execution for any shard count.
#include "sim/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <tuple>
#include <vector>

namespace agar::sim {
namespace {

using LaneId = ShardedEngine::LaneId;

TEST(ShardedEngine, ClampsShardCountToLaneCount) {
  ShardedEngine engine(8, 3);
  EXPECT_EQ(engine.num_shards(), 3u);
  EXPECT_EQ(engine.num_lanes(), 3u);
  ShardedEngine one(0, 4);
  EXPECT_EQ(one.num_shards(), 1u);
}

TEST(ShardedEngine, RunsWholeWindowsAndStopsAtTheBoundary) {
  ShardedEngine engine(1, 1);
  int fired = 0;
  engine.loop_of_lane(0).schedule_at(10.0, [&] { ++fired; });
  engine.loop_of_lane(0).schedule_at(1010.0, [&] { ++fired; });
  // The stop predicate turns true at the first boundary, so the second
  // window (and the t=1010 event) must never run.
  engine.run_windows(1000.0, [&] { return fired >= 1; });
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), 1000.0);
}

TEST(ShardedEngine, StopsWhenAllShardsIdle) {
  // Per-lane slots: each is written only by the owning shard's thread.
  ShardedEngine engine(2, 2);
  std::vector<int> per_lane(2, 0);
  for (LaneId lane = 0; lane < 2; ++lane) {
    EventLoop& loop = engine.loop_of_lane(lane);
    loop.set_scheduling_lane(lane);
    loop.schedule_at(40.0 + lane, [&per_lane, lane] { ++per_lane[lane]; });
  }
  engine.run_windows(50.0, nullptr);
  EXPECT_EQ(per_lane, (std::vector<int>{1, 1}));
  EXPECT_EQ(engine.now(), 50.0);  // one window was enough
}

/// One recorded hop: (virtual time, lane, chained value). The value chain
/// makes the trace sensitive to *order*, not just membership.
using Hop = std::tuple<SimTimeMs, LaneId, std::uint64_t>;

/// Lanes bounce messages at pseudo-random delays to pseudo-random lanes
/// through engine.post(). Returns per-lane traces. Ring capacity 2 forces
/// overflow spills whenever traffic bursts.
std::vector<std::vector<Hop>> run_ping_pong(std::size_t shards,
                                            std::size_t lanes,
                                            std::uint64_t* spills = nullptr,
                                            std::uint64_t* crossings = nullptr) {
  ShardedEngine engine(shards, lanes, /*ring_capacity=*/2);
  std::vector<std::vector<Hop>> traces(lanes);
  std::vector<std::uint64_t> counts(lanes, 0);

  auto hop = std::make_shared<std::function<void(LaneId, std::uint64_t)>>();
  // The continuation captures a weak_ptr: a strong self-capture would make
  // *hop own itself and leak (LeakSanitizer catches this). The local
  // strong ref outlives the engine, so lock() always succeeds during a run.
  std::weak_ptr<std::function<void(LaneId, std::uint64_t)>> weak_hop = hop;
  *hop = [&engine, &traces, &counts, weak_hop, lanes](LaneId lane,
                                                      std::uint64_t value) {
    EventLoop& loop = engine.loop_of_lane(lane);
    traces[lane].emplace_back(loop.now(), lane, value);
    ++counts[lane];
    const std::uint64_t next = value * 6364136223846793005ULL + lane + 1;
    const SimTimeMs delay = 5.0 + static_cast<SimTimeMs>(next % 120);
    const auto to = static_cast<LaneId>(next % lanes);
    engine.post(to, loop.now() + delay, [weak_hop, to, next] {
      if (auto h = weak_hop.lock()) (*h)(to, next);
    });
  };

  for (LaneId lane = 0; lane < lanes; ++lane) {
    EventLoop& loop = engine.loop_of_lane(lane);
    loop.set_scheduling_lane(lane);
    loop.schedule_at(static_cast<SimTimeMs>(lane),
                     [hop, lane] { (*hop)(lane, 1000 + lane); });
  }

  engine.run_windows(50.0, [&counts] {
    return std::accumulate(counts.begin(), counts.end(),
                           std::uint64_t{0}) >= 400;
  });
  if (spills != nullptr) *spills = engine.ring_spills();
  if (crossings != nullptr) *crossings = engine.cross_shard_messages();
  return traces;
}

TEST(ShardedEngine, PingPongTraceIsIdenticalForAnyShardCount) {
  constexpr std::size_t kLanes = 8;
  const auto serial = run_ping_pong(1, kLanes);
  std::uint64_t spills2 = 0, cross2 = 0;
  const auto two = run_ping_pong(2, kLanes, &spills2, &cross2);
  std::uint64_t spills4 = 0, cross4 = 0;
  const auto four = run_ping_pong(4, kLanes, &spills4, &cross4);
  const auto eight = run_ping_pong(8, kLanes);

  std::size_t total = 0;
  for (const auto& t : serial) total += t.size();
  EXPECT_GE(total, 400u);

  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, eight);

  // The parallel runs really did exercise the rings (and, with capacity 2,
  // the overflow spill path) — this is not a degenerate all-local run.
  EXPECT_GT(cross2, 0u);
  EXPECT_GT(cross4, 0u);
  EXPECT_GT(spills2, 0u);
  EXPECT_GT(spills4, 0u);
}

TEST(ShardedEngine, PostClampsToTheWindowBoundary) {
  // A message aimed *inside* the current window must not fire before the
  // next boundary — otherwise the destination shard could already be past
  // that time and results would depend on the lane-to-shard mapping.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
    ShardedEngine engine(shards, 2);
    std::vector<SimTimeMs> fired_at(2, -1.0);
    EventLoop& sender = engine.loop_of_lane(0);
    sender.set_scheduling_lane(0);
    sender.schedule_at(10.0, [&engine, &fired_at] {
      engine.post(1, 15.0, [&engine, &fired_at] {
        fired_at[1] = engine.loop_of_lane(1).now();
      });
    });
    engine.run_windows(50.0, nullptr);
    EXPECT_EQ(fired_at[1], 50.0) << shards << " shard(s)";
  }
}

TEST(ShardedEngine, PropagatesWorkerExceptions) {
  ShardedEngine engine(2, 2);
  for (LaneId lane = 0; lane < 2; ++lane) {
    EventLoop& loop = engine.loop_of_lane(lane);
    loop.set_scheduling_lane(lane);
    loop.schedule_at(10.0, [lane] {
      if (lane == 1) throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(engine.run_windows(50.0, nullptr), std::runtime_error);
}

}  // namespace
}  // namespace agar::sim
