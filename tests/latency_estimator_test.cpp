// Per-region latency estimation.
#include "stats/latency_estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace agar::stats {
namespace {

TEST(LatencyEstimator, ZeroRegionsThrows) {
  EXPECT_THROW(LatencyEstimator(0), std::invalid_argument);
}

TEST(LatencyEstimator, UnsampledIsInfinite) {
  LatencyEstimator e(3);
  EXPECT_TRUE(std::isinf(e.estimate_ms(0)));
  EXPECT_FALSE(e.has_sample(0));
}

TEST(LatencyEstimator, FirstSampleSeedsEstimate) {
  LatencyEstimator e(3, 0.5);
  e.record(1, 200.0);
  EXPECT_DOUBLE_EQ(e.estimate_ms(1), 200.0);
  EXPECT_TRUE(e.has_sample(1));
  EXPECT_EQ(e.samples(1), 1u);
}

TEST(LatencyEstimator, SubsequentSamplesBlend) {
  LatencyEstimator e(2, 0.5);
  e.record(0, 100.0);
  e.record(0, 200.0);
  EXPECT_DOUBLE_EQ(e.estimate_ms(0), 150.0);  // 0.5*200 + 0.5*100
}

TEST(LatencyEstimator, TracksDrift) {
  LatencyEstimator e(1, 0.5);
  e.record(0, 100.0);
  for (int i = 0; i < 30; ++i) e.record(0, 500.0);
  EXPECT_NEAR(e.estimate_ms(0), 500.0, 1.0);
}

TEST(LatencyEstimator, RegionsByEstimateSortsNearestFirst) {
  LatencyEstimator e(4, 0.5);
  e.record(0, 300.0);
  e.record(1, 100.0);
  e.record(2, 200.0);
  // Region 3 unsampled -> last.
  const auto order = e.regions_by_estimate();
  EXPECT_EQ(order, (std::vector<RegionId>{1, 2, 0, 3}));
}

TEST(LatencyEstimator, OutOfRangeThrows) {
  // Named `est`, not `e`: EXPECT_THROW's internal catch clause binds
  // `std::exception& e` and -Wshadow objects to the collision.
  LatencyEstimator est(2);
  EXPECT_THROW(est.record(5, 1.0), std::out_of_range);
  EXPECT_THROW((void)est.estimate_ms(5), std::out_of_range);
}

TEST(LatencyEstimator, IndependentRegions) {
  LatencyEstimator e(3, 0.5);
  e.record(0, 10.0);
  e.record(2, 30.0);
  EXPECT_DOUBLE_EQ(e.estimate_ms(0), 10.0);
  EXPECT_TRUE(std::isinf(e.estimate_ms(1)));
  EXPECT_DOUBLE_EQ(e.estimate_ms(2), 30.0);
}

}  // namespace
}  // namespace agar::stats
