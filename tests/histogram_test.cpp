// Latency statistics: mean, percentiles, merge.
#include "stats/histogram.hpp"

#include <gtest/gtest.h>

namespace agar::stats {
namespace {

TEST(Histogram, EmptyBasics) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_THROW((void)h.min(), std::logic_error);
  EXPECT_THROW((void)h.percentile(50), std::logic_error);
}

TEST(Histogram, MeanMinMax) {
  Histogram h;
  for (const double v : {3.0, 1.0, 2.0}) h.add(v);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, PercentileNearestRank) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1), 1.0);
}

TEST(Histogram, PercentileOutOfRangeThrows) {
  Histogram h;
  h.add(1.0);
  EXPECT_THROW((void)h.percentile(-1), std::invalid_argument);
  EXPECT_THROW((void)h.percentile(101), std::invalid_argument);
}

TEST(Histogram, SingleSample) {
  Histogram h;
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(Histogram, StddevKnownValue) {
  Histogram h;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.add(v);
  // Sample stddev of this classic set is ~2.138.
  EXPECT_NEAR(h.stddev(), 2.138, 0.001);
}

TEST(Histogram, AddAfterPercentileStillCorrect) {
  Histogram h;
  h.add(10.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 10.0);
  h.add(1.0);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.add(5.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(Histogram, MergeCombinesSamples) {
  Histogram a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

}  // namespace
}  // namespace agar::stats
