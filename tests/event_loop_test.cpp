// Discrete-event loop: ordering, determinism, periodic timers.
#include "sim/event_loop.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace agar::sim {
namespace {

TEST(EventLoop, StartsAtZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0.0);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30.0, [&] { order.push_back(3); });
  loop.schedule_at(10.0, [&] { order.push_back(1); });
  loop.schedule_at(20.0, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30.0);
}

TEST(EventLoop, TiesBreakByInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(5.0, [&] { order.push_back(1); });
  loop.schedule_at(5.0, [&] { order.push_back(2); });
  loop.schedule_at(5.0, [&] { order.push_back(3); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, ScheduleInIsRelative) {
  EventLoop loop;
  SimTimeMs fired_at = -1;
  loop.schedule_at(100.0, [&] {
    loop.schedule_in(50.0, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 150.0);
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop;
  SimTimeMs fired_at = -1;
  loop.schedule_at(100.0, [&] {
    loop.schedule_at(10.0, [&] { fired_at = loop.now(); });  // in the past
  });
  loop.run();
  EXPECT_EQ(fired_at, 100.0);
}

TEST(EventLoop, NegativeDelayClampsToZero) {
  EventLoop loop;
  bool fired = false;
  loop.schedule_in(-5.0, [&] { fired = true; });
  loop.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(loop.now(), 0.0);
}

TEST(EventLoop, CallbacksCanScheduleMore) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) loop.schedule_in(1.0, recurse);
  };
  loop.schedule_in(1.0, recurse);
  loop.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now(), 5.0);
}

TEST(EventLoop, RunUntilStopsAtHorizon) {
  EventLoop loop;
  std::vector<SimTimeMs> fired;
  for (int i = 1; i <= 5; ++i) {
    loop.schedule_at(i * 10.0, [&, i] { fired.push_back(i * 10.0); });
  }
  loop.run_until(30.0);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(loop.now(), 30.0);
  loop.run();
  EXPECT_EQ(fired.size(), 5u);
}

TEST(EventLoop, RunUntilAdvancesTimeEvenWithoutEvents) {
  EventLoop loop;
  loop.run_until(500.0);
  EXPECT_EQ(loop.now(), 500.0);
}

TEST(EventLoop, PeriodicFiresUntilCancelled) {
  EventLoop loop;
  int count = 0;
  loop.schedule_periodic(10.0, [&] { return ++count < 3; });
  loop.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(loop.now(), 30.0);
}

TEST(EventLoop, PeriodicFirstFiringAfterOnePeriod) {
  EventLoop loop;
  SimTimeMs first = -1;
  loop.schedule_periodic(25.0, [&] {
    if (first < 0) first = loop.now();
    return false;
  });
  loop.run();
  EXPECT_EQ(first, 25.0);
}

TEST(EventLoop, CountsExecutedEvents) {
  EventLoop loop;
  for (int i = 0; i < 7; ++i) loop.schedule_in(1.0, [] {});
  loop.run();
  EXPECT_EQ(loop.events_executed(), 7u);
}

TEST(EventLoop, CancelStopsPeriodicTimer) {
  EventLoop loop;
  int count = 0;
  const auto id = loop.schedule_periodic(10.0, [&] {
    ++count;
    return true;
  });
  EXPECT_TRUE(loop.timer_active(id));
  loop.run_until(25.0);
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(loop.cancel(id));
  loop.run();
  EXPECT_EQ(count, 2);  // the queued firing at t=30 became a no-op
  EXPECT_FALSE(loop.timer_active(id));
  EXPECT_EQ(loop.active_timer_count(), 0u);
}

TEST(EventLoop, CancelIsIdempotent) {
  EventLoop loop;
  const auto id = loop.schedule_periodic(10.0, [] { return true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));
  loop.run();
  EXPECT_EQ(loop.active_timer_count(), 0u);
}

TEST(EventLoop, CancelFromWithinCallbackCannotLeakTimer) {
  // The regression this guards: a callback that cancels its own timer and
  // then returns true (asking to re-arm) must NOT leave a live timer
  // behind — cancellation wins over the return value.
  EventLoop loop;
  int count = 0;
  EventLoop::TimerId id = 0;
  id = loop.schedule_periodic(10.0, [&] {
    ++count;
    loop.cancel(id);
    return true;  // lies: asks to re-arm after cancelling itself
  });
  loop.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.active_timer_count(), 0u);
  EXPECT_EQ(loop.now(), 10.0);  // no ghost firing at t=20
}

TEST(EventLoop, ReturningFalseReleasesTimerHandle) {
  EventLoop loop;
  const auto id = loop.schedule_periodic(10.0, [] { return false; });
  loop.run();
  EXPECT_FALSE(loop.timer_active(id));
  EXPECT_EQ(loop.active_timer_count(), 0u);
}

TEST(EventLoop, TimerIdsAreNotReused) {
  EventLoop loop;
  const auto a = loop.schedule_periodic(10.0, [] { return false; });
  const auto b = loop.schedule_periodic(10.0, [] { return false; });
  EXPECT_NE(a, b);
  loop.run();
  const auto c = loop.schedule_periodic(10.0, [] { return false; });
  EXPECT_NE(c, a);
  EXPECT_NE(c, b);
  loop.run();
}

TEST(EventLoop, StepExecutesExactlyOneEvent) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_in(1.0, [&] { ++fired; });
  loop.schedule_in(2.0, [&] { ++fired; });
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 1.0);
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(loop.step());
}

TEST(EventLoop, InterleavedPeriodicAndOneShot) {
  EventLoop loop;
  std::vector<std::string> sequence;
  loop.schedule_periodic(10.0, [&] {
    sequence.push_back("tick@" + std::to_string(static_cast<int>(loop.now())));
    return loop.now() < 30.0;
  });
  loop.schedule_at(15.0, [&] { sequence.push_back("shot@15"); });
  loop.run();
  EXPECT_EQ(sequence,
            (std::vector<std::string>{"tick@10", "shot@15", "tick@20",
                                      "tick@30"}));
}

}  // namespace
}  // namespace agar::sim
