// Shard-count invariance: the sharded simulation engine must produce the
// SAME bytes for any worker-thread count. Every runnable system from the
// registry runs a seeded multi-region experiment — windows, a scripted
// scenario and the periodic control plane all active — at shards=1 (the
// inline serial engine) and shards=4 (real threads, cross-shard rings),
// and the full results_json reports are compared as strings. Only
// planning_ms is wall clock; it is normalized exactly the way the CI
// cross-build diff normalizes it.
#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "api/api.hpp"
#include "client/report.hpp"

namespace agar {
namespace {

/// planning_ms is the one wall-clock field in the report; everything else
/// is virtual time or counters.
std::string normalize(std::string json) {
  static const std::regex planning("\"planning_ms\": [^,}\n]*");
  return std::regex_replace(json, planning, "\"planning_ms\": 0");
}

api::ExperimentSpec sharded_spec(const std::string& system,
                                 std::size_t shards) {
  api::ExperimentSpec spec;
  spec.experiment.deployment.num_objects = 25;
  spec.experiment.deployment.object_size_bytes = 9000;
  spec.experiment.deployment.seed = 31337;
  spec.experiment.ops_per_run = 200;
  spec.experiment.runs = 2;
  spec.experiment.num_clients = 2;
  spec.experiment.reconfig_period_ms = 10'000.0;
  spec.set("regions", "frankfurt,dublin,virginia,tokyo");
  spec.set("window_ms", "5000");
  spec.set("scenario",
           "1000 fail_region region=sydney; 2500 popularity_rotate by=7; "
           "6000 restore_region region=sydney");
  spec.set("shards", std::to_string(shards));

  spec.system = system;
  const auto& schema =
      api::StrategyRegistry::instance()
          .at(api::resolve_system(spec.system, spec.params).first)
          .schema;
  if (schema.has("chunks")) spec.params.set("chunks", "5");
  if (schema.has("cache_bytes")) spec.params.set("cache_bytes", "64KB");
  return spec;
}

class ShardedDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardedDeterminism, FourShardsMatchSerialByteForByte) {
  const auto serial = api::run(sharded_spec(GetParam(), 1)).result;
  const auto sharded = api::run(sharded_spec(GetParam(), 4)).result;

  // The whole report — per-run latencies, windows, hit counters, pipeline
  // gauges, control-plane telemetry — compared as rendered bytes.
  EXPECT_EQ(normalize(client::results_json({serial})),
            normalize(client::results_json({sharded})));

  // The interesting parts really were exercised.
  ASSERT_FALSE(serial.runs.empty());
  EXPECT_GT(serial.runs[0].ops, 0u);
  EXPECT_FALSE(serial.runs[0].windows.empty());
  EXPECT_GT(serial.runs[0].scenario_events_fired, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, ShardedDeterminism,
    ::testing::ValuesIn(api::runnable_systems()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Odd shard counts that do not divide the lane count, and shard counts
// beyond the lane count (clamped), must also be invariant.
TEST(ShardedDeterminismEdge, UnevenAndOversizedShardCounts) {
  const auto base =
      normalize(client::results_json({api::run(sharded_spec("agar", 1)).result}));
  for (const std::size_t shards : {2u, 3u, 8u}) {
    EXPECT_EQ(base, normalize(client::results_json(
                        {api::run(sharded_spec("agar", shards)).result})))
        << "shards=" << shards;
  }
}

// Gray-failure chaos plus hedging must stay shard-invariant: drop and
// straggle draws come from per-lane latency-model streams, the flap cycle
// re-arms itself through the loop, and the fetch policy's backoff jitter
// is seeded per (run, region) — none of it may depend on shard packing.
api::ExperimentSpec gray_spec(std::size_t shards) {
  auto spec = sharded_spec("agar", shards);
  spec.set("scenario",
           "500 straggle_region region=tokyo frac=0.3 mult=12; "
           "800 drop_region region=dublin p=0.2; "
           "1500 flap_region region=sydney period_ms=3000 down_ms=1000 "
           "until_ms=9000; "
           "7000 straggle_region region=tokyo frac=0; "
           "7000 drop_region region=dublin p=0");
  spec.set("fetch", "hedge");
  spec.set("fetch.retries", "1");
  spec.set("fetch.hedge_after_mult", "1.5");
  return spec;
}

TEST(ShardedDeterminismEdge, GrayFailureChaosWithHedgingIsShardInvariant) {
  const auto serial = api::run(gray_spec(1)).result;
  const auto sharded = api::run(gray_spec(4)).result;
  EXPECT_EQ(normalize(client::results_json({serial})),
            normalize(client::results_json({sharded})));

  ASSERT_FALSE(serial.runs.empty());
  EXPECT_GT(serial.runs[0].scenario_events_fired, 0u);
  EXPECT_GT(serial.runs[0].fetch_attempts, 0u);
  EXPECT_FALSE(serial.runs[0].region_success_ewma.empty());
}

// The cooperative cache tier adds cross-lane traffic everywhere at once:
// directory broadcasts, peer fetches, Paxos config appends, decided-epoch
// notifications — all riding post()/SPSC rings — plus a partition/heal
// script cutting and restoring the mesh mid-run. All of it must stay
// byte-identical for any shard count.
api::ExperimentSpec collab_spec(std::size_t shards) {
  auto spec = sharded_spec("agar", shards);
  spec.set("collab", "broadcast");
  spec.set("collab.period_s", "2");
  spec.set("collab.apply_ms", "500");
  spec.set("scenario",
           "1500 partition_regions regions=frankfurt,dublin; "
           "4000 heal_partition; "
           "6000 fail_region region=virginia");
  return spec;
}

TEST(ShardedDeterminismEdge, CollabBroadcastWithPartitionIsShardInvariant) {
  const auto serial = api::run(collab_spec(1)).result;
  const auto base = normalize(client::results_json({serial}));
  for (const std::size_t shards : {2u, 4u}) {
    EXPECT_EQ(base, normalize(client::results_json(
                        {api::run(collab_spec(shards)).result})))
        << "shards=" << shards;
  }

  ASSERT_FALSE(serial.runs.empty());
  EXPECT_TRUE(serial.runs[0].collab_active);
  EXPECT_GT(serial.runs[0].paxos_appends, 0u);
  EXPECT_GT(serial.runs[0].scenario_events_fired, 0u);
}

// The spec surface round-trips the key and rejects nonsense.
TEST(ShardedDeterminismEdge, SpecSurface) {
  api::ExperimentSpec spec;
  spec.set("shards", "4");
  EXPECT_EQ(spec.experiment.shards, 4u);
  EXPECT_NE(spec.to_json().find("\"shards\": 4"), std::string::npos);
  // Default stays out of the JSON so existing goldens never change.
  EXPECT_EQ(api::ExperimentSpec{}.to_json().find("shards"), std::string::npos);
  spec.set("shards", "0");
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace agar
