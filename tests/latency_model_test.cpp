// Latency model: jitter bounds, bandwidth term, determinism.
#include "sim/latency_model.hpp"

#include <gtest/gtest.h>

namespace agar::sim {
namespace {

class LatencyModelTest : public ::testing::Test {
 protected:
  Topology topology_ = aws_six_regions();
};

TEST_F(LatencyModelTest, NullTopologyThrows) {
  EXPECT_THROW(LatencyModel(nullptr, {}, 1), std::invalid_argument);
}

TEST_F(LatencyModelTest, BadJitterThrows) {
  LatencyModelParams p;
  p.jitter_fraction = 1.5;
  EXPECT_THROW(LatencyModel(&topology_, p, 1), std::invalid_argument);
  p.jitter_fraction = -0.1;
  EXPECT_THROW(LatencyModel(&topology_, p, 1), std::invalid_argument);
}

TEST_F(LatencyModelTest, ExpectedMatchesBasePlusTransfer) {
  LatencyModelParams p;
  p.wan_bandwidth_mbps = 100.0;
  LatencyModel model(&topology_, p, 7);
  // 100 Mbps = 12.5 KB/ms; 125000 bytes -> 10 ms.
  const double expected =
      topology_.base_latency_ms(0, 1) + 125000.0 * 8.0 / (100.0 * 1000.0);
  EXPECT_DOUBLE_EQ(model.expected_backend_fetch_ms(0, 1, 125000), expected);
}

TEST_F(LatencyModelTest, JitterStaysWithinBounds) {
  LatencyModelParams p;
  p.jitter_fraction = 0.10;
  p.wan_bandwidth_mbps = 1e9;  // neutralize transfer term
  LatencyModel model(&topology_, p, 11);
  const double base = topology_.base_latency_ms(0, 5);
  for (int i = 0; i < 5000; ++i) {
    const double v = model.backend_fetch_ms(0, 5, 0);
    EXPECT_GE(v, base * 0.9 - 1e-9);
    EXPECT_LE(v, base * 1.1 + 1e-9);
  }
}

TEST_F(LatencyModelTest, ZeroJitterIsExact) {
  LatencyModelParams p;
  p.jitter_fraction = 0.0;
  LatencyModel model(&topology_, p, 3);
  EXPECT_DOUBLE_EQ(model.backend_fetch_ms(2, 3, 0),
                   topology_.base_latency_ms(2, 3));
}

TEST_F(LatencyModelTest, SameSeedSameSequence) {
  LatencyModelParams p;
  LatencyModel a(&topology_, p, 99);
  LatencyModel b(&topology_, p, 99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.backend_fetch_ms(0, 4, 1000),
                     b.backend_fetch_ms(0, 4, 1000));
  }
}

TEST_F(LatencyModelTest, DifferentSeedsDiffer) {
  LatencyModelParams p;
  LatencyModel a(&topology_, p, 1);
  LatencyModel b(&topology_, p, 2);
  bool any_diff = false;
  for (int i = 0; i < 50; ++i) {
    if (a.backend_fetch_ms(0, 4, 1000) != b.backend_fetch_ms(0, 4, 1000)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(LatencyModelTest, CacheFetchMuchCheaperThanWan) {
  LatencyModelParams p;
  LatencyModel model(&topology_, p, 5);
  const double cache = model.expected_cache_fetch_ms(114_KB);
  const double wan = model.expected_backend_fetch_ms(
      region::kFrankfurt, region::kSydney, 114_KB);
  EXPECT_LT(cache, wan / 5.0);
}

TEST_F(LatencyModelTest, LargerTransfersAreSlower) {
  LatencyModelParams p;
  p.jitter_fraction = 0.0;
  LatencyModel model(&topology_, p, 5);
  EXPECT_LT(model.backend_fetch_ms(0, 1, 1_KB),
            model.backend_fetch_ms(0, 1, 10_MB));
}

TEST_F(LatencyModelTest, MeanJitterIsRoughlyNeutral) {
  LatencyModelParams p;
  p.jitter_fraction = 0.10;
  p.wan_bandwidth_mbps = 1e9;
  LatencyModel model(&topology_, p, 123);
  const double base = topology_.base_latency_ms(0, 3);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += model.backend_fetch_ms(0, 3, 0);
  const double mean = acc / n;
  EXPECT_NEAR(mean, base, base * 0.01);
}

// ------------------------------------------------------- gray failures

TEST_F(LatencyModelTest, StragglerInflatesExpectedLatencyExactly) {
  LatencyModel model(&topology_, {}, 5);
  const double before = model.expected_backend_fetch_ms(0, 1, 1000);
  model.set_region_straggle(1, /*frac=*/1.0, /*mult=*/10.0);
  EXPECT_DOUBLE_EQ(model.expected_backend_fetch_ms(0, 1, 1000), before * 10.0);
  // frac = 0.5 raises the mean by frac * (mult - 1).
  model.set_region_straggle(1, 0.5, 10.0);
  EXPECT_DOUBLE_EQ(model.expected_backend_fetch_ms(0, 1, 1000),
                   before * (1.0 + 0.5 * 9.0));
  model.set_region_straggle(1, 0.0, 10.0);  // clears
  EXPECT_DOUBLE_EQ(model.expected_backend_fetch_ms(0, 1, 1000), before);
  // Other regions are untouched throughout.
  EXPECT_DOUBLE_EQ(model.expected_gray_factor(2), 1.0);
}

TEST_F(LatencyModelTest, DropInflatesExpectedLatency) {
  LatencyModel model(&topology_, {}, 5);
  const double before = model.expected_backend_fetch_ms(0, 4, 1000);
  model.set_region_drop(4, /*p=*/0.3, /*latency_mult=*/3.0);
  EXPECT_GT(model.expected_gray_factor(4), 1.0);
  EXPECT_GT(model.expected_backend_fetch_ms(0, 4, 1000), before);
  model.set_region_drop(4, 0.0, 3.0);  // clears
  EXPECT_DOUBLE_EQ(model.expected_gray_factor(4), 1.0);
  EXPECT_DOUBLE_EQ(model.expected_backend_fetch_ms(0, 4, 1000), before);
}

TEST_F(LatencyModelTest, StragglersShowUpInSamples) {
  LatencyModelParams p;
  p.jitter_fraction = 0.0;
  LatencyModel model(&topology_, p, 5);
  const double nominal = model.expected_backend_fetch_ms(0, 1, 0);
  model.set_region_straggle(1, /*frac=*/1.0, /*mult=*/10.0);
  // With frac = 1 every sample straggles: exactly mult x nominal.
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(model.backend_fetch_ms(0, 1, 0), nominal * 10.0);
  }
}

TEST_F(LatencyModelTest, CertainDropMarksEverySample) {
  LatencyModel model(&topology_, {}, 5);
  model.set_region_drop(1, /*p=*/0.9999, /*latency_mult=*/3.0);
  const auto s = model.sample_backend_fetch(0, 1, 1000);
  EXPECT_TRUE(s.dropped);
  EXPECT_GT(s.latency_ms, 0.0);
}

// Gray RNG draws happen only while a knob is active: setting and clearing
// knobs without sampling in between must not perturb the jitter stream,
// so runs without gray events stay byte-identical.
TEST_F(LatencyModelTest, GrayDrawsAreGatedOnActiveKnobs) {
  LatencyModel plain(&topology_, {}, 77);
  LatencyModel toggled(&topology_, {}, 77);
  toggled.set_region_straggle(2, 0.5, 10.0);
  toggled.set_region_drop(3, 0.2, 3.0);
  toggled.set_region_straggle(2, 0.0, 10.0);
  toggled.set_region_drop(3, 0.0, 3.0);
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(plain.backend_fetch_ms(0, 2, 1000),
                     toggled.backend_fetch_ms(0, 2, 1000));
  }
}

}  // namespace
}  // namespace agar::sim
