// Latency model: jitter bounds, bandwidth term, determinism.
#include "sim/latency_model.hpp"

#include <gtest/gtest.h>

namespace agar::sim {
namespace {

class LatencyModelTest : public ::testing::Test {
 protected:
  Topology topology_ = aws_six_regions();
};

TEST_F(LatencyModelTest, NullTopologyThrows) {
  EXPECT_THROW(LatencyModel(nullptr, {}, 1), std::invalid_argument);
}

TEST_F(LatencyModelTest, BadJitterThrows) {
  LatencyModelParams p;
  p.jitter_fraction = 1.5;
  EXPECT_THROW(LatencyModel(&topology_, p, 1), std::invalid_argument);
  p.jitter_fraction = -0.1;
  EXPECT_THROW(LatencyModel(&topology_, p, 1), std::invalid_argument);
}

TEST_F(LatencyModelTest, ExpectedMatchesBasePlusTransfer) {
  LatencyModelParams p;
  p.wan_bandwidth_mbps = 100.0;
  LatencyModel model(&topology_, p, 7);
  // 100 Mbps = 12.5 KB/ms; 125000 bytes -> 10 ms.
  const double expected =
      topology_.base_latency_ms(0, 1) + 125000.0 * 8.0 / (100.0 * 1000.0);
  EXPECT_DOUBLE_EQ(model.expected_backend_fetch_ms(0, 1, 125000), expected);
}

TEST_F(LatencyModelTest, JitterStaysWithinBounds) {
  LatencyModelParams p;
  p.jitter_fraction = 0.10;
  p.wan_bandwidth_mbps = 1e9;  // neutralize transfer term
  LatencyModel model(&topology_, p, 11);
  const double base = topology_.base_latency_ms(0, 5);
  for (int i = 0; i < 5000; ++i) {
    const double v = model.backend_fetch_ms(0, 5, 0);
    EXPECT_GE(v, base * 0.9 - 1e-9);
    EXPECT_LE(v, base * 1.1 + 1e-9);
  }
}

TEST_F(LatencyModelTest, ZeroJitterIsExact) {
  LatencyModelParams p;
  p.jitter_fraction = 0.0;
  LatencyModel model(&topology_, p, 3);
  EXPECT_DOUBLE_EQ(model.backend_fetch_ms(2, 3, 0),
                   topology_.base_latency_ms(2, 3));
}

TEST_F(LatencyModelTest, SameSeedSameSequence) {
  LatencyModelParams p;
  LatencyModel a(&topology_, p, 99);
  LatencyModel b(&topology_, p, 99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.backend_fetch_ms(0, 4, 1000),
                     b.backend_fetch_ms(0, 4, 1000));
  }
}

TEST_F(LatencyModelTest, DifferentSeedsDiffer) {
  LatencyModelParams p;
  LatencyModel a(&topology_, p, 1);
  LatencyModel b(&topology_, p, 2);
  bool any_diff = false;
  for (int i = 0; i < 50; ++i) {
    if (a.backend_fetch_ms(0, 4, 1000) != b.backend_fetch_ms(0, 4, 1000)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(LatencyModelTest, CacheFetchMuchCheaperThanWan) {
  LatencyModelParams p;
  LatencyModel model(&topology_, p, 5);
  const double cache = model.expected_cache_fetch_ms(114_KB);
  const double wan = model.expected_backend_fetch_ms(
      region::kFrankfurt, region::kSydney, 114_KB);
  EXPECT_LT(cache, wan / 5.0);
}

TEST_F(LatencyModelTest, LargerTransfersAreSlower) {
  LatencyModelParams p;
  p.jitter_fraction = 0.0;
  LatencyModel model(&topology_, p, 5);
  EXPECT_LT(model.backend_fetch_ms(0, 1, 1_KB),
            model.backend_fetch_ms(0, 1, 10_MB));
}

TEST_F(LatencyModelTest, MeanJitterIsRoughlyNeutral) {
  LatencyModelParams p;
  p.jitter_fraction = 0.10;
  p.wan_bandwidth_mbps = 1e9;
  LatencyModel model(&topology_, p, 123);
  const double base = topology_.base_latency_ms(0, 3);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += model.backend_fetch_ms(0, 3, 0);
  const double mean = acc / n;
  EXPECT_NEAR(mean, base, base * 0.01);
}

}  // namespace
}  // namespace agar::sim
