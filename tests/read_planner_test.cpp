// Shared read planner: source resolution invariants for any configuration
// policy (Agar's knapsack or the periodic LFU baseline).
#include "core/read_planner.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

namespace agar::core {
namespace {

class ReadPlannerTest : public ::testing::Test {
 protected:
  ReadPlannerTest()
      : topology_(sim::aws_six_regions()),
        network_(sim::LatencyModel(&topology_, zero_jitter(), 4)),
        backend_(6, ec::CodecParams{9, 3},
                 std::make_shared<ec::RoundRobinPlacement>(false)),
        cache_(1_MB) {
    backend_.register_object("obj", 90_KB);
    RegionManagerParams p;
    p.local_region = sim::region::kFrankfurt;
    region_manager_ =
        std::make_unique<RegionManager>(&backend_, &network_, p);
    region_manager_->probe();
  }

  static sim::LatencyModelParams zero_jitter() {
    sim::LatencyModelParams p;
    p.jitter_fraction = 0.0;
    return p;
  }

  ReadPlan plan(const ConfiguredChunkFn& configured) {
    return plan_chunk_sources(backend_, *region_manager_, cache_, configured,
                              "obj");
  }

  static ConfiguredChunkFn nothing() {
    return [](const ObjectKey&, ChunkIndex) { return false; };
  }

  sim::Topology topology_;
  sim::Network network_;
  store::BackendCluster backend_;
  cache::StaticConfigCache cache_;
  std::unique_ptr<RegionManager> region_manager_;
};

TEST_F(ReadPlannerTest, ColdPlanFetchesKCheapest) {
  const ReadPlan p = plan(nothing());
  EXPECT_TRUE(p.from_cache.empty());
  EXPECT_EQ(p.from_backend.size(), 9u);
  EXPECT_TRUE(p.async_populate.empty());
  EXPECT_TRUE(p.populate_after_read.empty());
  // No chunk from Sydney (the two most distant) and at most one from Tokyo.
  std::size_t tokyo = 0;
  for (const auto& [idx, region] : p.from_backend) {
    EXPECT_NE(region, sim::region::kSydney);
    tokyo += (region == sim::region::kTokyo);
  }
  EXPECT_LE(tokyo, 1u);
}

TEST_F(ReadPlannerTest, PlanNeverDuplicatesChunks) {
  // Configure + populate some chunks, leave others configured-but-absent.
  cache_.install_configuration({ChunkId{"obj", 4}.cache_key(),
                                ChunkId{"obj", 3}.cache_key(),
                                ChunkId{"obj", 9}.cache_key()});
  cache_.put(ChunkId{"obj", 4}.cache_key(), Bytes(8, 1));
  const auto configured = [](const ObjectKey&, ChunkIndex idx) {
    return idx == 4 || idx == 3 || idx == 9;
  };
  const ReadPlan p = plan(configured);
  std::set<ChunkIndex> seen;
  for (const ChunkIndex c : p.from_cache) {
    EXPECT_TRUE(seen.insert(c).second);
  }
  for (const auto& [c, r] : p.from_backend) {
    EXPECT_TRUE(seen.insert(c).second);
  }
  EXPECT_EQ(p.chunks_on_path(), 9u);
}

TEST_F(ReadPlannerTest, ResidentChunksComeFromCache) {
  cache_.install_configuration({ChunkId{"obj", 4}.cache_key()});
  cache_.put(ChunkId{"obj", 4}.cache_key(), Bytes(8, 1));
  const ReadPlan p = plan(
      [](const ObjectKey&, ChunkIndex idx) { return idx == 4; });
  ASSERT_EQ(p.from_cache.size(), 1u);
  EXPECT_EQ(p.from_cache[0], 4u);
  EXPECT_EQ(p.from_backend.size(), 8u);
}

TEST_F(ReadPlannerTest, ConfiguredOnPathChunksMarkedForWriteBack) {
  // Chunk 4 (Tokyo) is configured but not resident; it is the 9th-cheapest
  // so it is fetched on-path and should be written back.
  const ReadPlan p = plan(
      [](const ObjectKey&, ChunkIndex idx) { return idx == 4; });
  ASSERT_EQ(p.populate_after_read.size(), 1u);
  EXPECT_EQ(p.populate_after_read[0], 4u);
  EXPECT_TRUE(p.async_populate.empty());
}

TEST_F(ReadPlannerTest, ConfiguredOffPathChunksPopulateAsync) {
  // Chunk 5 (Sydney) is never fetched on-path from Frankfurt; configuring
  // it forces an asynchronous population fetch.
  const ReadPlan p = plan(
      [](const ObjectKey&, ChunkIndex idx) { return idx == 5; });
  ASSERT_EQ(p.async_populate.size(), 1u);
  EXPECT_EQ(p.async_populate[0].first, 5u);
  EXPECT_EQ(p.async_populate[0].second, sim::region::kSydney);
  EXPECT_TRUE(p.populate_after_read.empty());
}

TEST_F(ReadPlannerTest, FullResidencyNeedsNoBackend) {
  std::unordered_set<std::string> keys;
  // The nine needed chunks from Frankfurt: all but Sydney's {5, 11} and
  // Tokyo's second chunk {10}.
  for (const ChunkIndex idx : {0u, 1u, 2u, 3u, 4u, 6u, 7u, 8u, 9u}) {
    keys.insert(ChunkId{"obj", idx}.cache_key());
  }
  cache_.install_configuration(keys);
  for (const ChunkIndex idx : {0u, 1u, 2u, 3u, 4u, 6u, 7u, 8u, 9u}) {
    cache_.put(ChunkId{"obj", idx}.cache_key(), Bytes(8, 1));
  }
  const ReadPlan p = plan([&](const ObjectKey&, ChunkIndex idx) {
    return keys.contains(ChunkId{"obj", idx}.cache_key());
  });
  EXPECT_EQ(p.from_cache.size(), 9u);
  EXPECT_TRUE(p.from_backend.empty());
}

}  // namespace
}  // namespace agar::core
