// ExperimentSpec: key=value routing, JSON spec files (round-trip and
// malformed-input diagnostics), sweep expansion, validation.
#include "api/experiment_spec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "api/json.hpp"
#include "api/registry.hpp"

namespace agar::api {
namespace {

TEST(ExperimentSpec, KeyValueRoutingReachesTypedFields) {
  const auto spec = ExperimentSpec::from_pairs(
      {"system=lru", "chunks=5", "cache_bytes=2MB", "workload=zipf:1.3",
       "region=sydney", "objects=120", "object_bytes=64KB", "ops=500",
       "runs=3", "clients=4", "arrival_rate=12.5", "period_s=15",
       "seed=99", "verify=true", "max_outstanding=8", "decode_ms_per_mb=2",
       "weights=1,5,9", "rs_k=6", "rs_m=2", "placement_offset=true"});
  EXPECT_EQ(spec.system, "lru");
  EXPECT_EQ(spec.params.get_size("chunks", 0), 5u);
  EXPECT_EQ(spec.params.get_size("cache_bytes", 0), 2_MB);
  EXPECT_EQ(spec.experiment.workload.kind,
            client::WorkloadSpec::Kind::kZipfian);
  EXPECT_DOUBLE_EQ(spec.experiment.workload.zipf_skew, 1.3);
  EXPECT_EQ(spec.experiment.client_region, sim::region::kSydney);
  EXPECT_EQ(spec.experiment.deployment.num_objects, 120u);
  EXPECT_EQ(spec.experiment.deployment.object_size_bytes, 64_KB);
  EXPECT_EQ(spec.experiment.ops_per_run, 500u);
  EXPECT_EQ(spec.experiment.runs, 3u);
  EXPECT_EQ(spec.experiment.num_clients, 4u);
  EXPECT_DOUBLE_EQ(spec.experiment.arrival_rate_per_s, 12.5);
  EXPECT_DOUBLE_EQ(spec.experiment.reconfig_period_ms, 15'000.0);
  EXPECT_EQ(spec.experiment.deployment.seed, 99u);
  EXPECT_TRUE(spec.experiment.verify_data);
  EXPECT_EQ(spec.experiment.max_outstanding_per_region, 8u);
  EXPECT_DOUBLE_EQ(spec.experiment.decode_ms_per_mb, 2.0);
  EXPECT_EQ(spec.experiment.agar_candidate_weights,
            (std::vector<std::size_t>{1, 5, 9}));
  EXPECT_EQ(spec.experiment.deployment.codec.k, 6u);
  EXPECT_EQ(spec.experiment.deployment.codec.m, 2u);
  EXPECT_TRUE(spec.experiment.deployment.per_key_placement_offset);
  spec.validate();
}

TEST(ExperimentSpec, WithCopiesAndOverrides) {
  const auto base = ExperimentSpec::from_pairs({"system=agar", "ops=100"});
  const auto derived = base.with({"system=lru", "chunks=3"});
  EXPECT_EQ(base.system, "agar");
  EXPECT_EQ(derived.system, "lru");
  EXPECT_EQ(derived.experiment.ops_per_run, 100u);
  EXPECT_EQ(derived.params.get_size("chunks", 0), 3u);
}

TEST(ExperimentSpec, RegionAfterRegionsWinsAndViceVersa) {
  // Last writer wins in both directions — a later "region" must not be
  // silently shadowed by an earlier multi-region list.
  const auto narrowed = ExperimentSpec::from_pairs(
      {"regions=dublin,tokyo", "region=sydney"});
  EXPECT_TRUE(narrowed.experiment.client_regions.empty());
  EXPECT_EQ(narrowed.experiment.client_region, sim::region::kSydney);
  EXPECT_EQ(narrowed.experiment.effective_client_regions(),
            std::vector<RegionId>{sim::region::kSydney});

  const auto widened = ExperimentSpec::from_pairs(
      {"region=sydney", "regions=dublin,tokyo"});
  EXPECT_EQ(widened.experiment.effective_client_regions(),
            (std::vector<RegionId>{sim::region::kDublin,
                                   sim::region::kTokyo}));
}

TEST(ExperimentSpec, UnknownEngineFailsAtValidateTime) {
  EXPECT_THROW(ExperimentSpec::from_pairs(
                   {"system=fixed-chunks", "engine=arcc"})
                   .validate(),
               UnknownNameError);
}

TEST(ExperimentSpec, ControlPlaneKeysValidateAgainstTheirRegistries) {
  // A fully specified control plane passes validation.
  ExperimentSpec::from_pairs(
      {"system=agar", "planner=incremental", "planner.threshold=0.2",
       "planner.full_every=10", "monitor=count-min", "monitor.width=512",
       "monitor.depth=4"})
      .validate();
  // Defaults (nothing specified) also pass.
  ExperimentSpec::from_pairs({"system=agar"}).validate();
}

TEST(ExperimentSpec, UnknownPlannerFailsAtValidateTimeWithKnownNames) {
  try {
    ExperimentSpec::from_pairs({"system=agar", "planner=simplex"}).validate();
    FAIL() << "expected UnknownNameError";
  } catch (const UnknownNameError& e) {
    const auto& known = e.known_names();
    EXPECT_NE(std::find(known.begin(), known.end(), "knapsack-dp"),
              known.end());
  }
}

TEST(ExperimentSpec, UnknownMonitorFailsAtValidateTime) {
  EXPECT_THROW(
      ExperimentSpec::from_pairs({"system=agar", "monitor=oracle"}).validate(),
      UnknownNameError);
}

TEST(ExperimentSpec, UnknownPlannerSubParamFailsAtValidateTime) {
  EXPECT_THROW(ExperimentSpec::from_pairs(
                   {"system=agar", "planner=incremental",
                    "planner.thresold=0.2"})  // typo
                   .validate(),
               std::invalid_argument);
}

TEST(ExperimentSpec, MalformedPlannerSubParamFailsAtValidateTime) {
  EXPECT_THROW(ExperimentSpec::from_pairs(
                   {"system=agar", "planner=incremental",
                    "planner.threshold=banana"})
                   .validate(),
               std::invalid_argument);
}

TEST(ExperimentSpec, ControlPlaneKeysAreRejectedForSystemsWithoutOne) {
  // `backend` has no control plane: planner= must not silently ride along.
  EXPECT_THROW(
      ExperimentSpec::from_pairs({"system=backend", "planner=greedy"})
          .validate(),
      std::invalid_argument);
}

TEST(ExperimentSpec, ControlPlanePicksShowUpInTheLabel) {
  EXPECT_EQ(ExperimentSpec::from_pairs({"system=agar"}).label(), "Agar");
  EXPECT_EQ(
      ExperimentSpec::from_pairs({"system=agar", "planner=greedy"}).label(),
      "Agar[greedy]");
  EXPECT_EQ(ExperimentSpec::from_pairs(
                {"system=agar", "planner=incremental", "monitor=count-min"})
                .label(),
            "Agar[incremental,count-min]");
}

TEST(ExperimentSpec, EmptyValueClearsAStrategyParam) {
  auto spec = ExperimentSpec::from_pairs({"system=lru", "cache_bytes=1MB"});
  EXPECT_TRUE(spec.params.has("cache_bytes"));
  spec.set_pair("cache_bytes=");
  EXPECT_FALSE(spec.params.has("cache_bytes"));
}

TEST(ExperimentSpec, MalformedValuesThrowWithDiagnostics) {
  EXPECT_THROW((void)ExperimentSpec::from_pairs({"ops=banana"}),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::from_pairs({"region=atlantis"}),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::from_pairs({"workload=zipf:fast"}),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::from_pairs({"not-a-pair"}),
               std::invalid_argument);
  try {
    (void)ExperimentSpec::from_pairs({"region=atlantis"});
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    // Diagnostic lists the known regions.
    EXPECT_NE(std::string(e.what()).find("frankfurt"), std::string::npos);
  }
}

TEST(ExperimentSpec, ValidateRejectsUnknownAndMistypedParams) {
  EXPECT_THROW(
      ExperimentSpec::from_pairs({"system=backend", "chunks=5"}).validate(),
      std::invalid_argument);
  EXPECT_THROW(
      ExperimentSpec::from_pairs({"system=lru", "chunks=lots"}).validate(),
      std::invalid_argument);
  EXPECT_THROW(ExperimentSpec::from_pairs({"system=unheard-of"}).validate(),
               UnknownNameError);
  // Engine-specific params ride along through the fixed-chunks adapter.
  ExperimentSpec::from_pairs({"system=tinylfu", "sketch_width=128"})
      .validate();
  EXPECT_THROW(ExperimentSpec::from_pairs({"system=lru", "sketch_width=128"})
                   .validate(),
               std::invalid_argument);
}

TEST(ExperimentSpec, JsonRoundTripPreservesEverything) {
  const auto spec = ExperimentSpec::from_pairs(
      {"system=tinylfu", "chunks=7", "cache_bytes=3MB", "sketch_width=512",
       "workload=uniform", "regions=dublin,tokyo", "objects=50",
       "object_bytes=128KB", "ops=400", "runs=2", "clients=3",
       "arrival_rate=5", "period_s=20", "seed=123", "verify=true",
       "max_outstanding=16", "decode_ms_per_mb=1.5", "weights=3,7",
       "rs_k=9", "rs_m=3", "placement_offset=false"});
  const auto parsed = parse_spec_json(spec.to_json());
  ASSERT_EQ(parsed.size(), 1u);
  const auto& back = parsed[0];
  EXPECT_EQ(back.system, spec.system);
  EXPECT_EQ(back.params.entries(), spec.params.entries());
  EXPECT_EQ(back.experiment.client_regions, spec.experiment.client_regions);
  EXPECT_EQ(back.experiment.workload.kind, spec.experiment.workload.kind);
  EXPECT_EQ(back.experiment.deployment.object_size_bytes,
            spec.experiment.deployment.object_size_bytes);
  EXPECT_EQ(back.experiment.deployment.seed, spec.experiment.deployment.seed);
  EXPECT_TRUE(back.experiment.verify_data);
  EXPECT_EQ(back.experiment.agar_candidate_weights,
            spec.experiment.agar_candidate_weights);
  EXPECT_DOUBLE_EQ(back.experiment.reconfig_period_ms,
                   spec.experiment.reconfig_period_ms);
  EXPECT_EQ(back.label(), spec.label());
}

TEST(ExperimentSpec, SystemsArrayExpandsIntoComparison) {
  const auto specs = parse_spec_json(R"({
    "objects": 30, "ops": 100,
    "systems": [
      {"system": "agar", "cache_bytes": "1MB"},
      {"system": "lru", "chunks": 5, "cache_bytes": "1MB"},
      "backend"
    ]
  })");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].system, "agar");
  EXPECT_EQ(specs[1].params.get_size("chunks", 0), 5u);
  EXPECT_EQ(specs[2].system, "backend");
  for (const auto& s : specs) {
    EXPECT_EQ(s.experiment.deployment.num_objects, 30u);
    EXPECT_EQ(s.experiment.ops_per_run, 100u);
  }
}

TEST(ExperimentSpec, SweepSectionExpandsGrid) {
  const auto specs = parse_spec_json(R"({
    "system": "lru", "cache_bytes": "1MB",
    "sweep": {"chunks": [1, 5], "workload": ["uniform", "zipf:1.1"]}
  })");
  ASSERT_EQ(specs.size(), 4u);
  // First sweep key is outermost.
  EXPECT_EQ(specs[0].params.get_size("chunks", 0), 1u);
  EXPECT_EQ(specs[1].params.get_size("chunks", 0), 1u);
  EXPECT_EQ(specs[2].params.get_size("chunks", 0), 5u);
  EXPECT_EQ(specs[0].experiment.workload.kind,
            client::WorkloadSpec::Kind::kUniform);
  EXPECT_EQ(specs[1].experiment.workload.kind,
            client::WorkloadSpec::Kind::kZipfian);
}

TEST(ExperimentSpec, MalformedJsonDiagnosticsNamePosition) {
  try {
    (void)parse_spec_json("{\n  \"ops\": 10,\n  oops\n}");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
  EXPECT_THROW((void)parse_spec_json("[1,2,3]"), std::invalid_argument);
  EXPECT_THROW((void)parse_spec_json(R"({"systems": 5})"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_spec_json(R"({"sweep": {"chunks": []}})"),
               std::invalid_argument);
  // Spec-level validation runs on every parsed spec.
  EXPECT_THROW((void)parse_spec_json(R"({"system": "nope"})"),
               std::invalid_argument);
}

TEST(ExperimentSpec, LoadSpecFileReadsAndNamesThePath) {
  const std::string path = ::testing::TempDir() + "/spec_test.json";
  {
    std::ofstream out(path);
    out << R"({"system": "arc", "chunks": 5, "cache_bytes": "1MB",)"
        << R"( "objects": 10, "ops": 50})";
  }
  const auto specs = load_spec_file(path);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].label(), "ARC-5");
  std::remove(path.c_str());

  try {
    (void)load_spec_file("/definitely/not/here.json");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("/definitely/not/here.json"),
              std::string::npos);
  }
}

TEST(Sweep, GridOrderAndBaseInheritance) {
  const auto base =
      ExperimentSpec::from_pairs({"system=lru", "cache_bytes=1MB", "ops=10"});
  const auto specs =
      sweep(base, {{"chunks", {"1", "9"}}, {"seed", {"1", "2", "3"}}});
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].params.get_size("chunks", 0), 1u);
  EXPECT_EQ(specs[0].experiment.deployment.seed, 1u);
  EXPECT_EQ(specs[2].experiment.deployment.seed, 3u);
  EXPECT_EQ(specs[3].params.get_size("chunks", 0), 9u);
  for (const auto& s : specs) EXPECT_EQ(s.experiment.ops_per_run, 10u);
  EXPECT_THROW((void)sweep(base, {{"chunks", {}}}), std::invalid_argument);
}

TEST(Json, ParserHandlesEscapesAndNesting) {
  const auto v = parse_json(
      R"({"a": "x\ny", "b": [1, 2.5, true, null], "c": {"d": "e"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("a")->text, "x\ny");
  EXPECT_EQ(v.find("b")->array.size(), 4u);
  EXPECT_EQ(v.find("b")->array[1].text, "2.5");
  EXPECT_EQ(v.find("c")->find("d")->text, "e");
  EXPECT_THROW((void)parse_json("{\"a\": }"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{\"a\": 1} trailing"),
               std::invalid_argument);
  // \u escapes: valid Latin-1 passes, non-hex digits fail with the
  // parser's positioned diagnostic instead of a raw stoul exception.
  EXPECT_EQ(parse_json(R"({"a": "A"})").find("a")->text, "A");
  try {
    (void)parse_json(R"({"a": "\u12g4"})");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  EXPECT_THROW((void)parse_json(R"({"a": "\uzzzz"})"),
               std::invalid_argument);
}

}  // namespace
}  // namespace agar::api
