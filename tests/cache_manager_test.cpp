// Cache manager: option generation over live stats, reconfiguration, and
// the installed configuration's invariants.
#include "core/cache_manager.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace agar::core {
namespace {

class CacheManagerTest : public ::testing::Test {
 protected:
  CacheManagerTest()
      : topology_(sim::aws_six_regions()),
        network_(sim::LatencyModel(&topology_, {}, 99)),
        backend_(6, ec::CodecParams{9, 3},
                 std::make_shared<ec::RoundRobinPlacement>(false)) {
    for (int i = 0; i < 20; ++i) {
      backend_.register_object("object" + std::to_string(i), 1_MB);
    }
  }

  std::unique_ptr<CacheManager> make_manager(std::size_t cache_bytes) {
    RegionManagerParams rp;
    rp.local_region = sim::region::kFrankfurt;
    region_manager_ =
        std::make_unique<RegionManager>(&backend_, &network_, rp);
    region_manager_->probe();
    monitor_ = std::make_unique<RequestMonitor>();
    cache_ = std::make_unique<cache::StaticConfigCache>(cache_bytes);
    CacheManagerParams cp;
    cp.candidate_weights = {1, 3, 5, 7, 9};
    return std::make_unique<CacheManager>(&backend_, region_manager_.get(),
                                          monitor_.get(), cache_.get(), cp);
  }

  sim::Topology topology_;
  sim::Network network_;
  store::BackendCluster backend_;
  std::unique_ptr<RegionManager> region_manager_;
  std::unique_ptr<RequestMonitor> monitor_;
  std::unique_ptr<cache::StaticConfigCache> cache_;
};

TEST_F(CacheManagerTest, NullDependenciesThrow) {
  RegionManagerParams rp;
  RegionManager rm(&backend_, &network_, rp);
  RequestMonitor mon;
  cache::StaticConfigCache cache(1_MB);
  CacheManagerParams cp;
  EXPECT_THROW(CacheManager(nullptr, &rm, &mon, &cache, cp),
               std::invalid_argument);
  EXPECT_THROW(CacheManager(&backend_, nullptr, &mon, &cache, cp),
               std::invalid_argument);
  EXPECT_THROW(CacheManager(&backend_, &rm, nullptr, &cache, cp),
               std::invalid_argument);
  EXPECT_THROW(CacheManager(&backend_, &rm, &mon, nullptr, cp),
               std::invalid_argument);
}

TEST_F(CacheManagerTest, EmptyStatsYieldEmptyConfiguration) {
  auto mgr = make_manager(10_MB);
  const auto& config = mgr->reconfigure();
  EXPECT_TRUE(config.entries.empty());
  EXPECT_EQ(cache_->configured_size(), 0u);
}

TEST_F(CacheManagerTest, HotKeysGetConfigured) {
  auto mgr = make_manager(10_MB);
  for (int i = 0; i < 50; ++i) monitor_->record_access("object0");
  for (int i = 0; i < 10; ++i) monitor_->record_access("object1");
  const auto& config = mgr->reconfigure();
  EXPECT_TRUE(config.entries.contains("object0"));
  EXPECT_GT(cache_->configured_size(), 0u);
}

TEST_F(CacheManagerTest, ConfigurationFitsCapacity) {
  auto mgr = make_manager(10_MB);
  for (int k = 0; k < 20; ++k) {
    for (int i = 0; i < 20 - k; ++i) {
      monitor_->record_access("object" + std::to_string(k));
    }
  }
  const auto& config = mgr->reconfigure();
  EXPECT_LE(config.total_bytes, 10_MB);
  EXPECT_GT(config.total_chunks, 0u);
}

TEST_F(CacheManagerTest, HotterKeysGetAtLeastAsManyChunks) {
  auto mgr = make_manager(5_MB);
  for (int i = 0; i < 100; ++i) monitor_->record_access("object0");
  for (int i = 0; i < 5; ++i) monitor_->record_access("object1");
  const auto& config = mgr->reconfigure();
  if (config.entries.contains("object0") &&
      config.entries.contains("object1")) {
    EXPECT_GE(config.entries.at("object0").weight,
              config.entries.at("object1").weight);
  } else {
    EXPECT_TRUE(config.entries.contains("object0"));
  }
}

TEST_F(CacheManagerTest, UnknownKeysAreIgnored) {
  auto mgr = make_manager(10_MB);
  for (int i = 0; i < 50; ++i) monitor_->record_access("not-in-backend");
  const auto& config = mgr->reconfigure();
  EXPECT_FALSE(config.entries.contains("not-in-backend"));
}

TEST_F(CacheManagerTest, WeightQuantumIsChunkSizeForUniformObjects) {
  auto mgr = make_manager(10_MB);
  monitor_->record_access("object0");
  EXPECT_EQ(mgr->weight_quantum_bytes(),
            backend_.object_info("object0").chunk_size);
}

TEST_F(CacheManagerTest, ContainsChunkReflectsChosenOption) {
  auto mgr = make_manager(50_MB);
  for (int i = 0; i < 50; ++i) monitor_->record_access("object0");
  const auto& config = mgr->reconfigure();
  ASSERT_TRUE(config.entries.contains("object0"));
  const auto& opt = config.entries.at("object0");
  for (const ChunkIndex c : opt.chunks) {
    EXPECT_TRUE(config.contains_chunk("object0", c));
  }
  EXPECT_FALSE(config.contains_chunk("object19", 0));
}

TEST_F(CacheManagerTest, InstalledKeysMatchConfiguration) {
  auto mgr = make_manager(10_MB);
  for (int i = 0; i < 30; ++i) monitor_->record_access("object0");
  for (int i = 0; i < 20; ++i) monitor_->record_access("object1");
  const auto& config = mgr->reconfigure();
  std::size_t chunk_keys = 0;
  for (const auto& [key, opt] : config.entries) {
    chunk_keys += opt.chunks.size();
    for (const ChunkIndex c : opt.chunks) {
      EXPECT_TRUE(cache_->is_configured(ChunkId{key, c}.cache_key()));
    }
  }
  EXPECT_EQ(cache_->configured_size(), chunk_keys);
}

TEST_F(CacheManagerTest, ReconfigureRollsThePeriod) {
  auto mgr = make_manager(10_MB);
  for (int i = 0; i < 100; ++i) monitor_->record_access("object0");
  mgr->reconfigure();
  EXPECT_DOUBLE_EQ(monitor_->popularity("object0"), 80.0);
  mgr->reconfigure();  // idle period decays popularity
  EXPECT_DOUBLE_EQ(monitor_->popularity("object0"), 16.0);
}

TEST_F(CacheManagerTest, AdaptsWhenPopularityShifts) {
  auto mgr = make_manager(5_MB);
  for (int i = 0; i < 100; ++i) monitor_->record_access("object0");
  mgr->reconfigure();
  ASSERT_TRUE(mgr->current().entries.contains("object0"));

  // The workload moves to object5 for several periods; object0 decays.
  for (int period = 0; period < 8; ++period) {
    for (int i = 0; i < 100; ++i) monitor_->record_access("object5");
    mgr->reconfigure();
  }
  EXPECT_TRUE(mgr->current().entries.contains("object5"));
  const auto& entries = mgr->current().entries;
  if (entries.contains("object0")) {
    EXPECT_LE(entries.at("object0").weight, entries.at("object5").weight);
  }
}

TEST_F(CacheManagerTest, WeightHistogramCountsObjects) {
  auto mgr = make_manager(50_MB);
  for (int k = 0; k < 10; ++k) {
    for (int i = 0; i < 100 / (k + 1); ++i) {
      monitor_->record_access("object" + std::to_string(k));
    }
  }
  const auto& config = mgr->reconfigure();
  const auto hist = config.weight_histogram();
  std::size_t total = 0;
  for (const auto& [w, count] : hist) total += count;
  EXPECT_EQ(total, config.entries.size());
}

TEST_F(CacheManagerTest, LargerCacheNeverLowersValue) {
  for (int i = 0; i < 50; ++i) {
    // fresh monitor state per manager; record into each manager's monitor.
  }
  auto small = make_manager(5_MB);
  for (int k = 0; k < 10; ++k) {
    for (int i = 0; i < 100 - k * 10; ++i) {
      monitor_->record_access("object" + std::to_string(k));
    }
  }
  const double small_value = small->reconfigure().total_value;

  auto large = make_manager(20_MB);
  for (int k = 0; k < 10; ++k) {
    for (int i = 0; i < 100 - k * 10; ++i) {
      monitor_->record_access("object" + std::to_string(k));
    }
  }
  const double large_value = large->reconfigure().total_value;
  EXPECT_GE(large_value, small_value - 1e-9);
}

}  // namespace
}  // namespace agar::core
