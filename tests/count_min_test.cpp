// Count-min sketch: never under-estimates, ages, bounded error.
#include "stats/count_min.hpp"

#include <gtest/gtest.h>

namespace agar::stats {
namespace {

TEST(CountMin, ValidatesDimensions) {
  EXPECT_THROW(CountMinSketch(0, 4), std::invalid_argument);
  EXPECT_THROW(CountMinSketch(16, 0), std::invalid_argument);
}

TEST(CountMin, UnseenKeyEstimatesZeroOnEmptySketch) {
  CountMinSketch s(1024, 4);
  EXPECT_EQ(s.estimate("never"), 0u);
}

TEST(CountMin, NeverUnderestimates) {
  CountMinSketch s(256, 4);
  for (int k = 0; k < 50; ++k) {
    const std::string key = "key" + std::to_string(k);
    for (int i = 0; i <= k; ++i) s.add(key);
  }
  for (int k = 0; k < 50; ++k) {
    const std::string key = "key" + std::to_string(k);
    EXPECT_GE(s.estimate(key), static_cast<std::uint64_t>(k + 1)) << key;
  }
}

TEST(CountMin, ExactWhenSparse) {
  CountMinSketch s(4096, 4);
  for (int i = 0; i < 100; ++i) s.add("solo");
  EXPECT_EQ(s.estimate("solo"), 100u);
}

TEST(CountMin, HalvingReducesCounts) {
  CountMinSketch s(1024, 4);
  for (int i = 0; i < 100; ++i) s.add("a");
  s.halve();
  EXPECT_EQ(s.estimate("a"), 50u);
}

TEST(CountMin, AutoAgingTriggers) {
  CountMinSketch s(1024, 4, /*aging_window=*/64);
  for (int i = 0; i < 64; ++i) s.add("a");
  // Exactly at the window the halve fires: 64 -> 32.
  EXPECT_EQ(s.estimate("a"), 32u);
}

TEST(CountMin, TotalAddsMonotonic) {
  CountMinSketch s(64, 2, 8);
  for (int i = 0; i < 100; ++i) s.add("x");
  EXPECT_EQ(s.total_adds(), 100u);
}

TEST(CountMin, DimensionsReported) {
  CountMinSketch s(128, 3);
  EXPECT_EQ(s.width(), 128u);
  EXPECT_EQ(s.depth(), 3u);
}

TEST(CountMin, ErrorBoundedUnderLoad) {
  // With width w, the over-estimate of any key is ~ total/w per row; the
  // min over 4 rows is far tighter. Check a generous bound.
  CountMinSketch s(1024, 4);
  for (int k = 0; k < 2000; ++k) {
    s.add("noise" + std::to_string(k));
  }
  for (int i = 0; i < 10; ++i) s.add("target");
  const auto est = s.estimate("target");
  EXPECT_GE(est, 10u);
  EXPECT_LE(est, 10u + 40u);  // 2010 adds / 1024 width * slack
}

}  // namespace
}  // namespace agar::stats
