// Deterministic RNG: reproducibility and rough distribution sanity.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace agar {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(55);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u64());
  a.reseed(55);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 10% relative
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(5.0, 6.5);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.5);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasRoughMoments) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, FillBytesDeterministic) {
  Rng a(31), b(31);
  std::vector<std::uint8_t> ba(100), bb(100);
  a.fill_bytes(ba.data(), ba.size());
  b.fill_bytes(bb.data(), bb.size());
  EXPECT_EQ(ba, bb);
}

TEST(Rng, FillBytesOddLengths) {
  Rng rng(37);
  for (const std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u}) {
    std::vector<std::uint8_t> buf(len, 0xEE);
    rng.fill_bytes(buf.data(), buf.size());
    // No assertion beyond not crashing for len 0; for others expect the
    // buffer to change with overwhelming probability when len >= 4.
    if (len >= 4) {
      bool changed = false;
      for (const auto b : buf) changed |= (b != 0xEE);
      EXPECT_TRUE(changed) << len;
    }
  }
}

TEST(SplitMix, KnownGolden) {
  // splitmix64(0) first output is a published constant.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace agar
