// LFU cache engine: frequency semantics, LRU tie-breaking, O(1) structure
// invariants.
#include "cache/lfu_cache.hpp"

#include <gtest/gtest.h>

namespace agar::cache {
namespace {

Bytes val(std::size_t n) { return Bytes(n, 0x11); }

TEST(LfuCache, PutGetRoundTrip) {
  LfuCache c(100);
  EXPECT_TRUE(c.put("a", val(10)));
  EXPECT_TRUE(c.get("a").has_value());
}

TEST(LfuCache, EvictsLeastFrequentlyUsed) {
  LfuCache c(30);
  c.put("a", val(10));
  c.put("b", val(10));
  c.put("c", val(10));
  // Bump a and c.
  (void)c.get("a");
  (void)c.get("c");
  c.put("d", val(10));  // evicts b (freq 1, least)
  EXPECT_TRUE(c.contains("a"));
  EXPECT_FALSE(c.contains("b"));
  EXPECT_TRUE(c.contains("c"));
  EXPECT_TRUE(c.contains("d"));
}

TEST(LfuCache, FrequencyCountsGetsAndPuts) {
  LfuCache c(100);
  c.put("a", val(10));
  EXPECT_EQ(c.frequency("a"), 1u);
  (void)c.get("a");
  (void)c.get("a");
  EXPECT_EQ(c.frequency("a"), 3u);
  c.put("a", val(10));  // overwrite also promotes
  EXPECT_EQ(c.frequency("a"), 4u);
  EXPECT_EQ(c.frequency("missing"), 0u);
}

TEST(LfuCache, TieBreaksByRecency) {
  LfuCache c(30);
  c.put("a", val(10));
  c.put("b", val(10));
  c.put("c", val(10));
  // All freq 1; 'a' is least recently touched.
  c.put("d", val(10));
  EXPECT_FALSE(c.contains("a"));
  EXPECT_TRUE(c.contains("b"));
}

TEST(LfuCache, HeavyHitterSurvivesScan) {
  // The classic LFU advantage: a frequently accessed key survives a scan of
  // one-shot keys (where LRU would evict it).
  LfuCache c(50);
  c.put("hot", val(10));
  for (int i = 0; i < 20; ++i) (void)c.get("hot");
  for (int i = 0; i < 100; ++i) {
    c.put("scan" + std::to_string(i), val(10));
  }
  EXPECT_TRUE(c.contains("hot"));
}

TEST(LfuCache, NeverExceedsCapacity) {
  LfuCache c(75);
  for (int i = 0; i < 500; ++i) {
    c.put("k" + std::to_string(i % 31), val(1 + i % 19));
    ASSERT_LE(c.used_bytes(), 75u);
  }
}

TEST(LfuCache, OversizedRejected) {
  LfuCache c(10);
  EXPECT_FALSE(c.put("big", val(20)));
  EXPECT_EQ(c.stats().rejections, 1u);
}

TEST(LfuCache, EraseRemovesEntry) {
  LfuCache c(100);
  c.put("a", val(10));
  (void)c.get("a");
  EXPECT_TRUE(c.erase("a"));
  EXPECT_FALSE(c.erase("a"));
  EXPECT_EQ(c.frequency("a"), 0u);
  EXPECT_EQ(c.used_bytes(), 0u);
}

TEST(LfuCache, ClearResetsState) {
  LfuCache c(100);
  c.put("a", val(10));
  c.put("b", val(20));
  c.clear();
  EXPECT_EQ(c.used_bytes(), 0u);
  EXPECT_TRUE(c.keys().empty());
  // Frequencies do not survive clear.
  c.put("a", val(10));
  EXPECT_EQ(c.frequency("a"), 1u);
}

TEST(LfuCache, EvictionCandidateIsLowestFreqLeastRecent) {
  LfuCache c(100);
  EXPECT_FALSE(c.eviction_candidate().has_value());
  c.put("a", val(10));
  c.put("b", val(10));
  (void)c.get("a");
  EXPECT_EQ(c.eviction_candidate(), "b");
  (void)c.get("b");
  (void)c.get("b");
  EXPECT_EQ(c.eviction_candidate(), "a");
}

TEST(LfuCache, OverwriteUpdatesByteAccounting) {
  LfuCache c(100);
  c.put("a", val(10));
  c.put("a", val(50));
  EXPECT_EQ(c.used_bytes(), 50u);
}

TEST(LfuCache, KeysListsAllResidents) {
  LfuCache c(100);
  c.put("a", val(10));
  c.put("b", val(10));
  (void)c.get("b");
  auto keys = c.keys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
}

TEST(LfuCache, StatsHitRate) {
  LfuCache c(100);
  c.put("a", val(10));
  (void)c.get("a");
  (void)c.get("a");
  (void)c.get("x");
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(LfuCache, MixedSizesEvictUntilFit) {
  LfuCache c(100);
  c.put("small1", val(10));
  c.put("small2", val(10));
  c.put("big", val(90));  // must evict both smalls
  EXPECT_TRUE(c.contains("big"));
  EXPECT_LE(c.used_bytes(), 100u);
}

TEST(LfuCache, StressManyOperations) {
  LfuCache c(500);
  for (int i = 0; i < 20000; ++i) {
    const std::string k = "k" + std::to_string(i % 53);
    if (i % 3 == 0) {
      c.put(k, val(1 + i % 29));
    } else {
      (void)c.get(k);
    }
    ASSERT_LE(c.used_bytes(), 500u);
  }
}

}  // namespace
}  // namespace agar::cache
