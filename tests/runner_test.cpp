// Experiment runner: deployment construction, closed-loop clients,
// aggregation, determinism — driven through the declarative api layer.
#include "client/runner.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "api/api.hpp"

namespace agar::client {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig c;
  c.deployment.num_objects = 20;
  c.deployment.object_size_bytes = 9000;
  c.deployment.seed = 7;
  c.ops_per_run = 120;
  c.runs = 2;
  c.num_clients = 2;
  c.reconfig_period_ms = 5000.0;
  return c;
}

/// One spec = the shared config plus system/params pairs.
api::ExperimentSpec spec_for(const ExperimentConfig& config,
                             const std::vector<std::string>& pairs) {
  api::ExperimentSpec spec;
  spec.experiment = config;
  for (const auto& pair : pairs) spec.set_pair(pair);
  return spec;
}

ExperimentResult run_system(const ExperimentConfig& config,
                            const std::vector<std::string>& pairs) {
  return api::run(spec_for(config, pairs)).result;
}

TEST(Deployment, BuildsSixRegionCluster) {
  DeploymentConfig c;
  c.num_objects = 3;
  c.object_size_bytes = 900;
  Deployment d(c);
  EXPECT_EQ(d.topology().num_regions(), 6u);
  EXPECT_EQ(d.backend().num_objects(), 3u);
  EXPECT_TRUE(d.backend().has_object("object0"));
}

TEST(Deployment, MetadataOnlyModeSkipsPayloads) {
  DeploymentConfig c;
  c.num_objects = 3;
  c.store_payloads = false;
  Deployment d(c);
  EXPECT_TRUE(d.backend().has_object("object0"));
  EXPECT_FALSE(d.backend().get_chunk({"object0", 0}).has_value());
}

TEST(SpecLabels, DerivedFromRegistryInOnePlace) {
  // The same derivation feeds bench legends, --list and JSON reports.
  EXPECT_EQ(api::ExperimentSpec::from_pairs({"system=backend"}).label(),
            "Backend");
  EXPECT_EQ(api::ExperimentSpec::from_pairs({"system=lru", "chunks=3"})
                .label(),
            "LRU-3");
  EXPECT_EQ(api::ExperimentSpec::from_pairs({"system=lfu", "chunks=9"})
                .label(),
            "LFU-9");
  EXPECT_EQ(api::ExperimentSpec::from_pairs({"system=tinylfu", "chunks=5"})
                .label(),
            "TinyLFU-5");
  EXPECT_EQ(api::ExperimentSpec::from_pairs(
                {"system=lfu-eviction", "chunks=5"})
                .label(),
            "LFUev-5");
  EXPECT_EQ(api::ExperimentSpec::from_pairs({"system=arc", "chunks=7"})
                .label(),
            "ARC-7");
  EXPECT_EQ(api::ExperimentSpec::from_pairs({"system=agar"}).label(), "Agar");
  // And the label the runner attaches to results is the same string.
  auto config = small_config();
  config.runs = 1;
  config.ops_per_run = 10;
  const auto report = api::run(spec_for(config, {"system=lru", "chunks=3",
                                                 "cache_bytes=64KB"}));
  EXPECT_EQ(report.label(), "LRU-3");
  EXPECT_EQ(report.result.label, "LRU-3");
}

TEST(Runner, BackendExperimentProducesAllOps) {
  const auto config = small_config();
  const auto result = run_system(config, {"system=backend"});
  EXPECT_EQ(result.runs.size(), 2u);
  EXPECT_EQ(result.total_ops(), 240u);
  EXPECT_GT(result.mean_latency_ms(), 0.0);
  EXPECT_DOUBLE_EQ(result.hit_ratio(), 0.0);
}

TEST(Runner, LruWithInfiniteCacheHitsAfterColdStart) {
  auto config = small_config();
  config.ops_per_run = 300;
  const auto result =
      run_system(config, {"system=lru", "chunks=9", "cache_bytes=500MB"});
  // 20 objects, 300 zipf reads: nearly everything after the first touch of
  // each object is a full hit.
  EXPECT_GT(result.hit_ratio(), 0.8);
  EXPECT_GT(result.full_hit_ratio(), 0.8);
  // And the average latency is far below backend-only.
  const auto backend = run_system(config, {"system=backend"});
  EXPECT_LT(result.mean_latency_ms(), backend.mean_latency_ms() * 0.5);
}

TEST(Runner, AgarRunsAndBeatsBackend) {
  auto config = small_config();
  config.ops_per_run = 400;
  const auto agar = run_system(config, {"system=agar", "cache_bytes=10MB"});
  const auto backend = run_system(config, {"system=backend"});
  EXPECT_GT(agar.hit_ratio(), 0.0);
  EXPECT_LT(agar.mean_latency_ms(), backend.mean_latency_ms());
  // Agar's final configuration must respect the cache budget.
  for (const auto& run : agar.runs) {
    EXPECT_LE(run.cache_used_bytes, 10_MB);
  }
}

TEST(Runner, ResultsAreDeterministic) {
  const auto config = small_config();
  const auto a =
      run_system(config, {"system=lfu", "chunks=5", "cache_bytes=5MB"});
  const auto b =
      run_system(config, {"system=lfu", "chunks=5", "cache_bytes=5MB"});
  EXPECT_DOUBLE_EQ(a.mean_latency_ms(), b.mean_latency_ms());
  EXPECT_DOUBLE_EQ(a.hit_ratio(), b.hit_ratio());
}

TEST(Runner, DifferentSeedsChangeResults) {
  auto config = small_config();
  const auto a =
      run_system(config, {"system=lru", "chunks=5", "cache_bytes=5MB"});
  config.deployment.seed = 12345;
  const auto b =
      run_system(config, {"system=lru", "chunks=5", "cache_bytes=5MB"});
  EXPECT_NE(a.mean_latency_ms(), b.mean_latency_ms());
}

TEST(Runner, PercentilesAreOrdered) {
  const auto config = small_config();
  const auto r =
      run_system(config, {"system=lru", "chunks=9", "cache_bytes=10MB"});
  EXPECT_LE(r.percentile_ms(50), r.percentile_ms(95));
  EXPECT_LE(r.percentile_ms(95), r.percentile_ms(99));
}

TEST(Runner, RunAllRunsEverySpec) {
  const auto config = small_config();
  const auto reports = api::run_all({
      spec_for(config, {"system=backend"}),
      spec_for(config, {"system=lru", "chunks=5", "cache_bytes=5MB"}),
      spec_for(config, {"system=agar", "cache_bytes=5MB"}),
  });
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].label(), "Backend");
  EXPECT_EQ(reports[2].label(), "Agar");
}

TEST(Runner, VerifyModeDecodesEveryRead) {
  auto config = small_config();
  config.verify_data = true;
  config.ops_per_run = 60;
  config.runs = 1;
  for (const std::vector<std::string>& pairs :
       {std::vector<std::string>{"system=backend"},
        {"system=lru", "chunks=5", "cache_bytes=5MB"},
        {"system=agar", "cache_bytes=5MB"}}) {
    const auto result = run_system(config, pairs);
    EXPECT_EQ(result.runs[0].verified, result.runs[0].ops) << result.label;
  }
}

TEST(Runner, AgarWeightHistogramPopulated) {
  auto config = small_config();
  config.ops_per_run = 500;
  config.runs = 1;
  config.reconfig_period_ms = 2000.0;
  const auto result = run_system(config, {"system=agar", "cache_bytes=5MB"});
  std::size_t total = 0;
  for (const auto& [w, count] : result.runs[0].weight_histogram) {
    EXPECT_GE(w, 1u);
    EXPECT_LE(w, 9u);
    total += count;
  }
  EXPECT_GT(total, 0u);
}

TEST(Runner, UniformWorkloadMakesCachingUseless) {
  auto config = small_config();
  config.deployment.num_objects = 100;
  config.workload = WorkloadSpec::uniform();
  config.ops_per_run = 200;
  // 100 KB cache holds ~11 of the 100 objects (9 x 1000-byte chunks each);
  // under uniform access the hit ratio collapses toward that fraction.
  const auto lru =
      run_system(config, {"system=lru", "chunks=9", "cache_bytes=100KB"});
  EXPECT_LT(lru.hit_ratio(), 0.2);
}

TEST(Runner, CustomFactoriesRunWithoutRegistry) {
  // The runner itself stays registry-agnostic: any StrategyFactory works.
  auto config = small_config();
  config.runs = 1;
  const StrategyFactory factory =
      [](const ExperimentConfig& cfg, Deployment& deployment, RegionId region,
         sim::EventLoop* loop) {
        auto spec = api::ExperimentSpec::from_pairs({"system=backend"});
        spec.experiment = cfg;
        (void)loop;
        return api::make_strategy(spec, deployment, region);
      };
  const auto result = run_experiment(config, factory, "hand-rolled");
  EXPECT_EQ(result.label, "hand-rolled");
  EXPECT_EQ(result.total_ops(), 120u);
}

}  // namespace
}  // namespace agar::client
