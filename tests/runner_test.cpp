// Experiment runner: deployment construction, closed-loop clients,
// aggregation, determinism.
#include "client/runner.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace agar::client {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig c;
  c.deployment.num_objects = 20;
  c.deployment.object_size_bytes = 9000;
  c.deployment.seed = 7;
  c.ops_per_run = 120;
  c.runs = 2;
  c.num_clients = 2;
  c.reconfig_period_ms = 5000.0;
  return c;
}

TEST(Deployment, BuildsSixRegionCluster) {
  DeploymentConfig c;
  c.num_objects = 3;
  c.object_size_bytes = 900;
  Deployment d(c);
  EXPECT_EQ(d.topology().num_regions(), 6u);
  EXPECT_EQ(d.backend().num_objects(), 3u);
  EXPECT_TRUE(d.backend().has_object("object0"));
}

TEST(Deployment, MetadataOnlyModeSkipsPayloads) {
  DeploymentConfig c;
  c.num_objects = 3;
  c.store_payloads = false;
  Deployment d(c);
  EXPECT_TRUE(d.backend().has_object("object0"));
  EXPECT_FALSE(d.backend().get_chunk({"object0", 0}).has_value());
}

TEST(StrategySpecs, Labels) {
  EXPECT_EQ(StrategySpec::backend().label(), "Backend");
  EXPECT_EQ(StrategySpec::lru(3, 10_MB).label(), "LRU-3");
  EXPECT_EQ(StrategySpec::lfu(9, 10_MB).label(), "LFU-9");
  EXPECT_EQ(StrategySpec::tinylfu(5, 10_MB).label(), "TinyLFU-5");
  EXPECT_EQ(StrategySpec::agar(10_MB).label(), "Agar");
}

TEST(Runner, BackendExperimentProducesAllOps) {
  const auto config = small_config();
  const auto result = run_experiment(config, StrategySpec::backend());
  EXPECT_EQ(result.runs.size(), 2u);
  EXPECT_EQ(result.total_ops(), 240u);
  EXPECT_GT(result.mean_latency_ms(), 0.0);
  EXPECT_DOUBLE_EQ(result.hit_ratio(), 0.0);
}

TEST(Runner, LruWithInfiniteCacheHitsAfterColdStart) {
  auto config = small_config();
  config.ops_per_run = 300;
  const auto result =
      run_experiment(config, StrategySpec::lru(9, 500_MB));
  // 20 objects, 300 zipf reads: nearly everything after the first touch of
  // each object is a full hit.
  EXPECT_GT(result.hit_ratio(), 0.8);
  EXPECT_GT(result.full_hit_ratio(), 0.8);
  // And the average latency is far below backend-only.
  const auto backend = run_experiment(config, StrategySpec::backend());
  EXPECT_LT(result.mean_latency_ms(), backend.mean_latency_ms() * 0.5);
}

TEST(Runner, AgarRunsAndBeatsBackend) {
  auto config = small_config();
  config.ops_per_run = 400;
  const auto agar = run_experiment(config, StrategySpec::agar(10_MB));
  const auto backend = run_experiment(config, StrategySpec::backend());
  EXPECT_GT(agar.hit_ratio(), 0.0);
  EXPECT_LT(agar.mean_latency_ms(), backend.mean_latency_ms());
  // Agar's final configuration must respect the cache budget.
  for (const auto& run : agar.runs) {
    EXPECT_LE(run.cache_used_bytes, 10_MB);
  }
}

TEST(Runner, ResultsAreDeterministic) {
  const auto config = small_config();
  const auto a = run_experiment(config, StrategySpec::lfu(5, 5_MB));
  const auto b = run_experiment(config, StrategySpec::lfu(5, 5_MB));
  EXPECT_DOUBLE_EQ(a.mean_latency_ms(), b.mean_latency_ms());
  EXPECT_DOUBLE_EQ(a.hit_ratio(), b.hit_ratio());
}

TEST(Runner, DifferentSeedsChangeResults) {
  auto config = small_config();
  const auto a = run_experiment(config, StrategySpec::lru(5, 5_MB));
  config.deployment.seed = 12345;
  const auto b = run_experiment(config, StrategySpec::lru(5, 5_MB));
  EXPECT_NE(a.mean_latency_ms(), b.mean_latency_ms());
}

TEST(Runner, PercentilesAreOrdered) {
  const auto config = small_config();
  const auto r = run_experiment(config, StrategySpec::lru(9, 10_MB));
  EXPECT_LE(r.percentile_ms(50), r.percentile_ms(95));
  EXPECT_LE(r.percentile_ms(95), r.percentile_ms(99));
}

TEST(Runner, ComparisonRunsAllSpecs) {
  const auto config = small_config();
  const auto results = run_comparison(
      config, {StrategySpec::backend(), StrategySpec::lru(5, 5_MB),
               StrategySpec::agar(5_MB)});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].spec.label(), "Backend");
  EXPECT_EQ(results[2].spec.label(), "Agar");
}

TEST(Runner, VerifyModeDecodesEveryRead) {
  auto config = small_config();
  config.verify_data = true;
  config.ops_per_run = 60;
  config.runs = 1;
  for (const auto spec :
       {StrategySpec::backend(), StrategySpec::lru(5, 5_MB),
        StrategySpec::agar(5_MB)}) {
    const auto result = run_experiment(config, spec);
    EXPECT_EQ(result.runs[0].verified, result.runs[0].ops)
        << spec.label();
  }
}

TEST(Runner, AgarWeightHistogramPopulated) {
  auto config = small_config();
  config.ops_per_run = 500;
  config.runs = 1;
  config.reconfig_period_ms = 2000.0;
  const auto result = run_experiment(config, StrategySpec::agar(5_MB));
  std::size_t total = 0;
  for (const auto& [w, count] : result.runs[0].weight_histogram) {
    EXPECT_GE(w, 1u);
    EXPECT_LE(w, 9u);
    total += count;
  }
  EXPECT_GT(total, 0u);
}

TEST(Runner, UniformWorkloadMakesCachingUseless) {
  auto config = small_config();
  config.deployment.num_objects = 100;
  config.workload = WorkloadSpec::uniform();
  config.ops_per_run = 200;
  // 100 KB cache holds ~11 of the 100 objects (9 x 1000-byte chunks each);
  // under uniform access the hit ratio collapses toward that fraction.
  const auto lru = run_experiment(config, StrategySpec::lru(9, 100_KB));
  EXPECT_LT(lru.hit_ratio(), 0.2);
}

}  // namespace
}  // namespace agar::client
