// Object <-> chunk codec: padding, odd sizes, decode-from-subsets.
#include "ec/object_codec.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace agar::ec {
namespace {

TEST(ObjectCodec, ChunkSizeCeilDivides) {
  const ObjectCodec codec(CodecParams{9, 3});
  EXPECT_EQ(codec.chunk_size(9), 1u);
  EXPECT_EQ(codec.chunk_size(10), 2u);
  EXPECT_EQ(codec.chunk_size(1_MB), (1_MB + 8) / 9);
}

TEST(ObjectCodec, EmptyObjectStillMakesChunks) {
  const ObjectCodec codec(CodecParams{4, 2});
  const auto encoded = codec.encode({});
  EXPECT_EQ(encoded.object_size, 0u);
  EXPECT_EQ(encoded.chunks.size(), 6u);
  for (const auto& c : encoded.chunks) EXPECT_EQ(c.data.size(), 1u);
}

TEST(ObjectCodec, EncodeProducesIndexedChunks) {
  const ObjectCodec codec(CodecParams{3, 2});
  const Bytes payload = deterministic_payload("x", 100);
  const auto encoded = codec.encode(BytesView(payload));
  ASSERT_EQ(encoded.chunks.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(encoded.chunks[i].index, i);
  }
}

TEST(ObjectCodec, RoundTripAllChunks) {
  const ObjectCodec codec(CodecParams{9, 3});
  const Bytes payload = deterministic_payload("obj", 12345);
  const auto encoded = codec.encode(BytesView(payload));
  EXPECT_EQ(codec.decode(encoded.object_size, encoded.chunks), payload);
}

TEST(ObjectCodec, RoundTripFromParityOnlySubset) {
  const ObjectCodec codec(CodecParams{3, 3});
  const Bytes payload = deterministic_payload("p", 1000);
  const auto encoded = codec.encode(BytesView(payload));
  // Use chunks {2, 3, 4}: one data + two parity.
  std::vector<Chunk> subset{encoded.chunks[2], encoded.chunks[3],
                            encoded.chunks[4]};
  EXPECT_EQ(codec.decode(payload.size(), subset), payload);
}

TEST(ObjectCodec, RoundTripSizesSweep) {
  const ObjectCodec codec(CodecParams{9, 3});
  // Sizes straddling padding boundaries: k-1, k, k+1, primes, 1 MB.
  for (const std::size_t size :
       {std::size_t{1}, std::size_t{8}, std::size_t{9}, std::size_t{10},
        std::size_t{1009}, std::size_t{65537}, 1_MB}) {
    const Bytes payload = deterministic_payload("s" + std::to_string(size),
                                                size);
    const auto encoded = codec.encode(BytesView(payload));
    EXPECT_EQ(codec.decode(size, encoded.chunks), payload) << size;
  }
}

TEST(ObjectCodec, PaddingIsStripped) {
  const ObjectCodec codec(CodecParams{4, 1});
  const Bytes payload{1, 2, 3, 4, 5};  // 5 bytes -> 4 chunks of 2 (3 padding)
  const auto encoded = codec.encode(BytesView(payload));
  EXPECT_EQ(encoded.chunks[0].data.size(), 2u);
  EXPECT_EQ(codec.decode(5, encoded.chunks), payload);
}

TEST(ObjectCodec, DecodeTooFewChunksThrows) {
  const ObjectCodec codec(CodecParams{3, 1});
  const Bytes payload = deterministic_payload("few", 99);
  auto encoded = codec.encode(BytesView(payload));
  encoded.chunks.resize(2);
  EXPECT_THROW((void)codec.decode(99, encoded.chunks),
               std::invalid_argument);
}

TEST(ObjectCodec, DecodeMatchesOnEveryKSubsetOfPaperCode) {
  const ObjectCodec codec(CodecParams{9, 3});
  const Bytes payload = deterministic_payload("paper", 4096);
  const auto encoded = codec.encode(BytesView(payload));
  // A few representative subsets rather than all C(12,9): leading,
  // trailing, parity-heavy, alternating.
  const std::vector<std::vector<std::size_t>> subsets = {
      {0, 1, 2, 3, 4, 5, 6, 7, 8},
      {3, 4, 5, 6, 7, 8, 9, 10, 11},
      {0, 1, 2, 3, 4, 5, 9, 10, 11},
      {0, 2, 4, 6, 8, 9, 10, 11, 1},
  };
  for (const auto& subset : subsets) {
    std::vector<Chunk> chunks;
    chunks.reserve(subset.size());
    for (const std::size_t i : subset) chunks.push_back(encoded.chunks[i]);
    EXPECT_EQ(codec.decode(payload.size(), chunks), payload);
  }
}

}  // namespace
}  // namespace agar::ec
