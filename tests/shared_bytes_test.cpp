// SharedBytes: refcounted immutable chunk buffers and their zero-copy
// hand-offs through bucket, backend and cache layers.
#include "common/shared_bytes.hpp"

#include <gtest/gtest.h>

#include "cache/lru_cache.hpp"
#include "store/bucket.hpp"

namespace agar {
namespace {

TEST(SharedBytes, DefaultIsEmpty) {
  const SharedBytes s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.view().size(), 0u);
}

TEST(SharedBytes, AdoptsBytesByMove) {
  Bytes b{1, 2, 3};
  const std::uint8_t* payload = b.data();
  const SharedBytes s(std::move(b));
  EXPECT_EQ(s.size(), 3u);
  // The allocation moved, it was not copied.
  EXPECT_EQ(s.data(), payload);
}

TEST(SharedBytes, CopyIsRefcountBumpNotByteCopy) {
  const SharedBytes a(Bytes{1, 2, 3, 4});
  EXPECT_EQ(a.use_count(), 1);
  const SharedBytes b = a;  // NOLINT(performance-unnecessary-copy-...)
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_EQ(a.data(), b.data());  // same allocation
  EXPECT_EQ(a, b);
}

TEST(SharedBytes, ViewInteropAndEquality) {
  const SharedBytes a(Bytes{9, 8, 7});
  const BytesView v = a;  // implicit conversion
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.data(), a.data());
  EXPECT_EQ(SharedBytes::copy_of(v), a);
  EXPECT_FALSE(SharedBytes(Bytes{9, 8}) == a);
  EXPECT_FALSE(SharedBytes(Bytes{9, 8, 6}) == a);
}

TEST(SharedBytes, BucketGetSharesTheStoredBuffer) {
  store::Bucket bucket;
  bucket.put({"k", 0}, Bytes{1, 2, 3});
  const auto a = bucket.get({"k", 0});
  ASSERT_TRUE(a.has_value());
  const auto b = bucket.get({"k", 0});
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->data(), b->data());  // one allocation, many handles
  EXPECT_GE(a->use_count(), 3);     // bucket + a + b
}

TEST(SharedBytes, CacheHitSurvivesEviction) {
  cache::LruCache cache(10);
  cache.put("a", Bytes{1, 2, 3});
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  cache.put("b", Bytes(9, 0xFF));  // evicts "a"
  EXPECT_FALSE(cache.contains("a"));
  // The handle keeps the buffer alive past eviction.
  EXPECT_EQ(hit->size(), 3u);
  EXPECT_EQ((*hit)[2], 3);
}

TEST(SharedBytes, CachePutDoesNotCopyPayload) {
  cache::LruCache cache(100);
  SharedBytes payload(Bytes{5, 6, 7});
  const std::uint8_t* raw = payload.data();
  cache.put("k", payload);  // refcount bump in, not a byte copy
  const auto hit = cache.get("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->data(), raw);
}

}  // namespace
}  // namespace agar
