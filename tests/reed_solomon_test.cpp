// Reed-Solomon codec: the "any k of k+m" contract, parameter sweeps, and
// failure handling.
#include "ec/reed_solomon.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"

namespace agar::ec {
namespace {

std::vector<Bytes> random_chunks(std::size_t k, std::size_t size,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> chunks(k, Bytes(size));
  for (auto& c : chunks) rng.fill_bytes(c.data(), c.size());
  return chunks;
}

std::vector<BytesView> views_of(const std::vector<Bytes>& chunks) {
  std::vector<BytesView> v;
  v.reserve(chunks.size());
  for (const auto& c : chunks) v.emplace_back(c);
  return v;
}

TEST(ReedSolomon, ParamsValidation) {
  EXPECT_THROW(ReedSolomon(CodecParams{0, 3}), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(CodecParams{200, 100}), std::invalid_argument);
  EXPECT_NO_THROW(ReedSolomon(CodecParams{9, 3}));
  EXPECT_NO_THROW(ReedSolomon(CodecParams{9, 0}));  // m == 0 is legal
}

TEST(ReedSolomon, EncodeProducesMParityChunks) {
  const ReedSolomon rs(CodecParams{9, 3});
  const auto data = random_chunks(9, 128, 1);
  const auto parity = rs.encode(views_of(data));
  ASSERT_EQ(parity.size(), 3u);
  for (const auto& p : parity) EXPECT_EQ(p.size(), 128u);
}

TEST(ReedSolomon, EncodeWrongChunkCountThrows) {
  const ReedSolomon rs(CodecParams{4, 2});
  const auto data = random_chunks(3, 16, 2);
  EXPECT_THROW((void)rs.encode(views_of(data)), std::invalid_argument);
}

TEST(ReedSolomon, EncodeRaggedSizesThrows) {
  const ReedSolomon rs(CodecParams{2, 1});
  std::vector<Bytes> data{Bytes(16), Bytes(17)};
  EXPECT_THROW((void)rs.encode(views_of(data)), std::invalid_argument);
}

TEST(ReedSolomon, AllDataChunksFastPath) {
  const ReedSolomon rs(CodecParams{4, 2});
  const auto data = random_chunks(4, 64, 3);
  std::vector<std::pair<std::uint32_t, BytesView>> available;
  for (std::uint32_t i = 0; i < 4; ++i) available.emplace_back(i, data[i]);
  const auto out = rs.reconstruct_data(available);
  ASSERT_EQ(out.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], data[i]);
}

TEST(ReedSolomon, FewerThanKThrows) {
  const ReedSolomon rs(CodecParams{4, 2});
  const auto data = random_chunks(4, 64, 4);
  std::vector<std::pair<std::uint32_t, BytesView>> available{
      {0, BytesView(data[0])}, {1, BytesView(data[1])}};
  EXPECT_THROW((void)rs.reconstruct_data(available), std::invalid_argument);
}

TEST(ReedSolomon, DuplicateIndicesDoNotCount) {
  const ReedSolomon rs(CodecParams{3, 2});
  const auto data = random_chunks(3, 32, 5);
  std::vector<std::pair<std::uint32_t, BytesView>> available{
      {0, BytesView(data[0])},
      {0, BytesView(data[0])},
      {1, BytesView(data[1])}};
  EXPECT_THROW((void)rs.reconstruct_data(available), std::invalid_argument);
}

TEST(ReedSolomon, OutOfRangeIndexThrows) {
  const ReedSolomon rs(CodecParams{2, 1});
  const auto data = random_chunks(2, 8, 6);
  std::vector<std::pair<std::uint32_t, BytesView>> available{
      {0, BytesView(data[0])}, {7, BytesView(data[1])}};
  EXPECT_THROW((void)rs.reconstruct_data(available), std::invalid_argument);
}

TEST(ReedSolomon, ReconstructChunkReturnsAvailableDirectly) {
  const ReedSolomon rs(CodecParams{2, 2});
  const auto data = random_chunks(2, 16, 7);
  const auto parity = rs.encode(views_of(data));
  std::vector<std::pair<std::uint32_t, BytesView>> available{
      {0, BytesView(data[0])},
      {1, BytesView(data[1])},
      {2, BytesView(parity[0])}};
  EXPECT_EQ(rs.reconstruct_chunk(2, available), parity[0]);
}

TEST(ReedSolomon, ReconstructMissingParityChunk) {
  const ReedSolomon rs(CodecParams{3, 2});
  const auto data = random_chunks(3, 48, 8);
  const auto parity = rs.encode(views_of(data));
  // Provide data chunks only; ask for parity chunk 4 (index 3+1).
  std::vector<std::pair<std::uint32_t, BytesView>> available;
  for (std::uint32_t i = 0; i < 3; ++i) available.emplace_back(i, data[i]);
  EXPECT_EQ(rs.reconstruct_chunk(4, available), parity[1]);
}

TEST(ReedSolomon, ReconstructTargetOutOfRangeThrows) {
  const ReedSolomon rs(CodecParams{2, 1});
  const auto data = random_chunks(2, 8, 9);
  std::vector<std::pair<std::uint32_t, BytesView>> available{
      {0, BytesView(data[0])}, {1, BytesView(data[1])}};
  EXPECT_THROW((void)rs.reconstruct_chunk(9, available),
               std::invalid_argument);
}

// The central MDS contract, swept over (k, m) x matrix kind: encode, then
// decode from EVERY possible subset of exactly k chunks.
struct SweepParam {
  std::size_t k;
  std::size_t m;
  MatrixKind kind;
};

class AnyKofKM : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AnyKofKM, EverySubsetDecodes) {
  const auto [k, m, kind] = GetParam();
  const ReedSolomon rs(CodecParams{k, m, kind});
  const std::size_t chunk_size = 96;
  const auto data = random_chunks(k, chunk_size, 1000 + k * 10 + m);
  const auto parity = rs.encode(views_of(data));

  std::vector<Bytes> all;
  all.insert(all.end(), data.begin(), data.end());
  all.insert(all.end(), parity.begin(), parity.end());

  // Iterate all C(k+m, k) subsets.
  const std::size_t total = k + m;
  std::vector<std::size_t> pick(k);
  std::iota(pick.begin(), pick.end(), 0);
  std::size_t subsets = 0;
  while (true) {
    std::vector<std::pair<std::uint32_t, BytesView>> available;
    available.reserve(k);
    for (const std::size_t idx : pick) {
      available.emplace_back(static_cast<std::uint32_t>(idx),
                             BytesView(all[idx]));
    }
    const auto out = rs.reconstruct_data(available);
    ASSERT_EQ(out.size(), k);
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(out[i], data[i]) << "chunk " << i << " subset #" << subsets;
    }
    ++subsets;

    std::size_t i = k;
    bool advanced = false;
    while (i > 0) {
      --i;
      if (pick[i] != i + total - k) {
        ++pick[i];
        for (std::size_t j = i + 1; j < k; ++j) pick[j] = pick[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  EXPECT_GT(subsets, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    CodecSweep, AnyKofKM,
    ::testing::Values(SweepParam{2, 1, MatrixKind::kCauchy},
                      SweepParam{2, 2, MatrixKind::kCauchy},
                      SweepParam{3, 2, MatrixKind::kCauchy},
                      SweepParam{4, 2, MatrixKind::kCauchy},
                      SweepParam{4, 3, MatrixKind::kCauchy},
                      SweepParam{6, 3, MatrixKind::kCauchy},
                      SweepParam{9, 3, MatrixKind::kCauchy},
                      SweepParam{2, 1, MatrixKind::kVandermonde},
                      SweepParam{3, 2, MatrixKind::kVandermonde},
                      SweepParam{4, 3, MatrixKind::kVandermonde},
                      SweepParam{6, 3, MatrixKind::kVandermonde},
                      SweepParam{9, 3, MatrixKind::kVandermonde}));

TEST(ReedSolomon, LargeCodeRoundTrip) {
  // A wide code near the field-size limit still works.
  const ReedSolomon rs(CodecParams{32, 16});
  const auto data = random_chunks(32, 64, 77);
  const auto parity = rs.encode(views_of(data));
  // Decode from the last 32 chunks (16 data + 16 parity).
  std::vector<std::pair<std::uint32_t, BytesView>> available;
  for (std::uint32_t i = 16; i < 32; ++i) available.emplace_back(i, data[i]);
  for (std::uint32_t p = 0; p < 16; ++p) {
    available.emplace_back(32 + p, parity[p]);
  }
  const auto out = rs.reconstruct_data(available);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(out[i], data[i]);
}

TEST(ReedSolomon, MoreThanKAvailableUsesKDistinct) {
  const ReedSolomon rs(CodecParams{3, 3});
  const auto data = random_chunks(3, 24, 11);
  const auto parity = rs.encode(views_of(data));
  std::vector<std::pair<std::uint32_t, BytesView>> available;
  for (std::uint32_t i = 0; i < 3; ++i) available.emplace_back(i, data[i]);
  for (std::uint32_t p = 0; p < 3; ++p) {
    available.emplace_back(3 + p, parity[p]);
  }
  const auto out = rs.reconstruct_data(available);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(out[i], data[i]);
}

TEST(ReedSolomon, EncodingMatrixIsSystematic) {
  const ReedSolomon rs(CodecParams{5, 2});
  EXPECT_TRUE(rs.encoding_matrix().sub_rows(0, 5).is_identity());
}

TEST(ReedSolomon, ZeroDataEncodesToZeroParity) {
  const ReedSolomon rs(CodecParams{4, 2});
  std::vector<Bytes> data(4, Bytes(32, 0));
  const auto parity = rs.encode(views_of(data));
  for (const auto& p : parity) {
    for (const auto b : p) EXPECT_EQ(b, 0);
  }
}

}  // namespace
}  // namespace agar::ec
