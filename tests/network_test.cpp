// Network wrapper: failure injection and parallel-batch semantics.
#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace agar::sim {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : topology_(aws_six_regions()),
        network_(LatencyModel(&topology_, {}, 42)) {}

  Topology topology_;
  Network network_;
};

TEST_F(NetworkTest, FetchFromLiveRegionReturnsLatency) {
  const auto l = network_.backend_fetch(0, 1, 1000);
  ASSERT_TRUE(l.has_value());
  EXPECT_GT(*l, 0.0);
}

TEST_F(NetworkTest, FetchFromDownRegionFails) {
  network_.fail_region(region::kTokyo);
  EXPECT_FALSE(network_.backend_fetch(0, region::kTokyo, 1000).has_value());
  EXPECT_TRUE(network_.backend_fetch(0, region::kDublin, 1000).has_value());
}

TEST_F(NetworkTest, RestoreBringsRegionBack) {
  network_.fail_region(2);
  EXPECT_TRUE(network_.is_down(2));
  network_.restore_region(2);
  EXPECT_FALSE(network_.is_down(2));
  EXPECT_TRUE(network_.backend_fetch(0, 2, 1000).has_value());
}

TEST_F(NetworkTest, DownCountTracksFailures) {
  EXPECT_EQ(network_.down_count(), 0u);
  network_.fail_region(1);
  network_.fail_region(3);
  network_.fail_region(1);  // duplicate
  EXPECT_EQ(network_.down_count(), 2u);
}

TEST_F(NetworkTest, CacheFetchAlwaysSucceeds) {
  network_.fail_region(0);
  EXPECT_GT(network_.cache_fetch(1000), 0.0);
}

TEST(NetworkBatch, EmptyBatchIsZero) {
  EXPECT_EQ(Network::parallel_batch_ms({}), 0.0);
}

TEST(NetworkBatch, BatchIsMax) {
  EXPECT_EQ(Network::parallel_batch_ms({10.0, 50.0, 30.0}), 50.0);
  EXPECT_EQ(Network::parallel_batch_ms({42.0}), 42.0);
}

}  // namespace
}  // namespace agar::sim
