// Network wrapper: failure injection and parallel-batch semantics.
#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/event_loop.hpp"

namespace agar::sim {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : topology_(aws_six_regions()),
        network_(LatencyModel(&topology_, {}, 42)) {}

  Topology topology_;
  Network network_;
};

TEST_F(NetworkTest, FetchFromLiveRegionReturnsLatency) {
  const auto l = network_.backend_fetch(0, 1, 1000);
  ASSERT_TRUE(l.has_value());
  EXPECT_GT(*l, 0.0);
}

TEST_F(NetworkTest, FetchFromDownRegionFails) {
  network_.fail_region(region::kTokyo);
  EXPECT_FALSE(network_.backend_fetch(0, region::kTokyo, 1000).has_value());
  EXPECT_TRUE(network_.backend_fetch(0, region::kDublin, 1000).has_value());
}

TEST_F(NetworkTest, RestoreBringsRegionBack) {
  network_.fail_region(2);
  EXPECT_TRUE(network_.is_down(2));
  network_.restore_region(2);
  EXPECT_FALSE(network_.is_down(2));
  EXPECT_TRUE(network_.backend_fetch(0, 2, 1000).has_value());
}

TEST_F(NetworkTest, DownCountTracksFailures) {
  EXPECT_EQ(network_.down_count(), 0u);
  network_.fail_region(1);
  network_.fail_region(3);
  network_.fail_region(1);  // duplicate
  EXPECT_EQ(network_.down_count(), 2u);
}

TEST_F(NetworkTest, CacheFetchAlwaysSucceeds) {
  network_.fail_region(0);
  EXPECT_GT(network_.cache_fetch(1000), 0.0);
}

// ------------------------------------------------- mid-run outage semantics
//
// Regression tests for the outage path: failing a region must abort the
// transfers already on the wire (observers hear nullopt at fail time, not a
// successful completion at the transfer's scheduled time) and must fail
// queued FIFO entries immediately (not strand them until an unrelated
// completion drains the queue).

class NetworkOutageTest : public NetworkTest {
 protected:
  NetworkOutageTest() { network_.bind_loop(&loop_); }

  EventLoop loop_;
};

TEST_F(NetworkOutageTest, FailRegionAbortsInFlightFetches) {
  const RegionId to = region::kTokyo;
  std::vector<std::optional<SimTimeMs>> outcomes;
  std::vector<SimTimeMs> at;
  ASSERT_TRUE(network_.begin_fetch(region::kFrankfurt, to, 1000, [&](auto l) {
    outcomes.push_back(l);
    at.push_back(loop_.now());
  }));
  ASSERT_EQ(network_.outstanding(to), 1u);

  // The region dies while the transfer is mid-flight.
  loop_.run_until(1.0);
  network_.fail_region(to);
  loop_.run();

  // The observer hears the failure exactly once, at fail time — the
  // transfer does not complete successfully later.
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].has_value());
  EXPECT_DOUBLE_EQ(at[0], 1.0);
  EXPECT_EQ(network_.in_flight(), 0u);
  EXPECT_EQ(network_.failed_fetches(), 1u);
}

TEST_F(NetworkOutageTest, FailRegionFailsQueuedFetchesImmediately) {
  network_.set_max_outstanding_per_region(1);
  const RegionId to = region::kDublin;
  std::vector<SimTimeMs> failure_times;
  std::size_t failures = 0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        network_.begin_fetch(region::kFrankfurt, to, 1000, [&](auto l) {
          if (!l.has_value()) {
            ++failures;
            failure_times.push_back(loop_.now());
          }
        }));
  }
  ASSERT_EQ(network_.queue_depth(to), 2u);

  loop_.run_until(1.0);
  network_.fail_region(to);
  loop_.run();

  // All three fail at fail time: the wire fetch aborted, and the two queued
  // entries did not wait for a (never-coming) completion to drain them.
  EXPECT_EQ(failures, 3u);
  ASSERT_EQ(failure_times.size(), 3u);
  for (const SimTimeMs t : failure_times) EXPECT_DOUBLE_EQ(t, 1.0);
  EXPECT_EQ(network_.queue_depth(to), 0u);
  EXPECT_EQ(network_.in_flight(), 0u);
}

TEST_F(NetworkOutageTest, RestoreCannotResurrectAbortedFetches) {
  const RegionId to = region::kSydney;
  std::size_t calls = 0;
  std::optional<SimTimeMs> last = SimTimeMs{-1.0};
  ASSERT_TRUE(network_.begin_fetch(region::kFrankfurt, to, 1000, [&](auto l) {
    ++calls;
    last = l;
  }));
  // Fail and immediately restore, all before the transfer would have
  // landed: the aborted fetch must stay failed, and its stale completion
  // event must not fire a second callback (or touch the slot accounting).
  network_.fail_region(to);
  network_.restore_region(to);
  loop_.run();
  EXPECT_EQ(calls, 1u);
  EXPECT_FALSE(last.has_value());
  EXPECT_EQ(network_.in_flight(), 0u);
  // The restored region serves fresh fetches normally.
  bool ok = false;
  ASSERT_TRUE(network_.begin_fetch(region::kFrankfurt, to, 1000,
                                   [&](auto l) { ok = l.has_value(); }));
  loop_.run();
  EXPECT_TRUE(ok);
}

TEST_F(NetworkOutageTest, FailRegionIsIdempotent) {
  const RegionId to = region::kTokyo;
  std::size_t calls = 0;
  ASSERT_TRUE(network_.begin_fetch(region::kFrankfurt, to, 1000,
                                   [&](auto) { ++calls; }));
  network_.fail_region(to);
  network_.fail_region(to);  // duplicate must not double-deliver
  loop_.run();
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(network_.failed_fetches(), 1u);
}

// The failure aggregate splits by mode: outage aborts of transfers on the
// wire, kills of FIFO-queued entries, and gray-drop timeouts each land in
// their own counter; `failed_fetches()` stays their sum.
TEST_F(NetworkOutageTest, FailureCountersSplitByMode) {
  network_.set_max_outstanding_per_region(1);
  const RegionId to = region::kDublin;
  std::size_t failures = 0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(network_.begin_fetch(region::kFrankfurt, to, 1000,
                                     [&](auto l) {
                                       if (!l.has_value()) ++failures;
                                     }));
  }
  loop_.run_until(1.0);
  network_.fail_region(to);
  loop_.run();

  EXPECT_EQ(failures, 3u);
  EXPECT_EQ(network_.aborted_on_wire(), 1u);  // the one on the wire
  EXPECT_EQ(network_.failed_in_queue(), 2u);  // the two behind it
  EXPECT_EQ(network_.timed_out(), 0u);
  EXPECT_EQ(network_.failed_fetches(), 3u);

  // A gray drop charges the third mode: the response is lost and the
  // requester hears nullopt only after the inflated discovery delay.
  network_.restore_region(to);
  network_.model().set_region_drop(to, /*p=*/0.9999, /*latency_mult=*/3.0);
  std::optional<SimTimeMs> out = SimTimeMs{-1.0};
  SimTimeMs at = -1.0;
  ASSERT_TRUE(network_.begin_fetch(region::kFrankfurt, to, 1000, [&](auto l) {
    out = l;
    at = loop_.now();
  }));
  loop_.run();
  EXPECT_FALSE(out.has_value());
  EXPECT_GT(at, 1.0);
  EXPECT_EQ(network_.timed_out(), 1u);
  EXPECT_EQ(network_.failed_fetches(), 4u);
}

// Flap regression: fail -> restore cycles must leave no stranded wire or
// FIFO state behind — a restored region only hands out slots on
// completions, so anything stranded would wedge the region forever.
TEST_F(NetworkOutageTest, FlapCyclesLeaveNoStrandedState) {
  network_.set_max_outstanding_per_region(1);
  const RegionId to = region::kTokyo;
  std::size_t failures = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 2; ++i) {  // one on the wire, one queued
      ASSERT_TRUE(network_.begin_fetch(region::kFrankfurt, to, 1000,
                                       [&](auto l) {
                                         if (!l.has_value()) ++failures;
                                       }));
    }
    loop_.run_until(loop_.now() + 1.0);
    network_.fail_region(to);
    network_.restore_region(to);
    EXPECT_FALSE(network_.is_down(to));
    EXPECT_EQ(network_.outstanding(to), 0u);
    EXPECT_EQ(network_.queue_depth(to), 0u);
  }
  network_.restore_region(to);  // restoring an up region is a no-op
  loop_.run();

  EXPECT_EQ(failures, 6u);
  EXPECT_EQ(network_.aborted_on_wire(), 3u);
  EXPECT_EQ(network_.failed_in_queue(), 3u);
  EXPECT_EQ(network_.in_flight(), 0u);

  // After all that flapping the region still serves cleanly.
  bool ok = false;
  ASSERT_TRUE(network_.begin_fetch(region::kFrankfurt, to, 1000,
                                   [&](auto l) { ok = l.has_value(); }));
  loop_.run();
  EXPECT_TRUE(ok);
}

TEST(NetworkBatch, EmptyBatchIsZero) {
  EXPECT_EQ(Network::parallel_batch_ms({}), 0.0);
}

TEST(NetworkBatch, BatchIsMax) {
  EXPECT_EQ(Network::parallel_batch_ms({10.0, 50.0, 30.0}), 50.0);
  EXPECT_EQ(Network::parallel_batch_ms({42.0}), 42.0);
}

}  // namespace
}  // namespace agar::sim
